//! Fully decentralized execution over the simulated network.
//!
//! [`SimnetDriver`] is the simulated-network front-end of the
//! [`Driver`] trait: it drives the same
//! [`DmfsgdNode`] state machines held by a [`Session`], but every
//! protocol step is an actual message with latency (and optionally
//! loss) through [`dmf_simnet::SimNet`]:
//!
//! * **RTT (Algorithm 1)** — node `i` timestamps its probe; the RTT is
//!   *inferred from the simulated round-trip itself* (reply arrival −
//!   probe departure), exactly as ping infers it, then thresholded at
//!   `τ`.
//! * **ABW (Algorithm 2)** — the probe carries `u_i`; the *target*
//!   runs the pathload-style train against ground truth, updates
//!   `v_j`, and replies with `(x_ij, v_j)`.
//!
//! A probe timer per node fires every `probe_interval_s` (plus jitter)
//! and picks a uniform random neighbor — the Vivaldi-style schedule of
//! §5.3. Losing a reply simply loses one training opportunity; the
//! algorithm needs no reliability from the transport. Departed nodes
//! (see [`Session::leave`]) neither probe nor reply; their timer
//! chains idle until the slot rejoins.
//!
//! [`SimnetRunner`] bundles a private `Session` with a `SimnetDriver`
//! for the common build-train-evaluate flow; use the driver directly
//! when the session must outlive the transport (snapshots, mixed
//! front-ends).
//!
//! # Hot-path layout
//!
//! A probe/reply cycle is allocation-free after warmup: coordinate
//! snapshots ride the [`Msg`] enum as inline [`CoordVec`]s (rank ≤ 16
//! never touches the heap), outstanding RTT probes live in small
//! per-node scratch lists whose capacity is reused, and the event
//! queue recycles its payload slots. Outstanding-probe bookkeeping is
//! O(probes actually in flight) per node, not O(n²) in the population.

use crate::config::DmfsgdConfig;
use crate::coords::CoordVec;
use crate::error::{ConfigError, DmfsgdError, MembershipError};
use crate::node::DmfsgdNode;
use crate::session::{Driver, Session, SessionBuilder};
use dmf_datasets::{Dataset, Metric};
use dmf_linalg::Matrix;
use dmf_proto::{
    decode_any, encode, encode_v2, ContextError, DecoderContext, EncoderContext, Message,
    MessageV2, WireMessage, WireVersion,
};
use dmf_simnet::probe::PathloadProber;
use dmf_simnet::{NetConfig, SimNet};
use rand::Rng;
use std::collections::HashMap;

/// Protocol messages exchanged by DMFSGD nodes.
#[derive(Clone, Debug, PartialEq)]
pub enum Msg {
    /// RTT probe (Algorithm 1, step 1).
    RttProbe,
    /// RTT reply carrying the target's coordinates (step 2).
    RttReply {
        /// `u_j` of the replying node.
        u: CoordVec,
        /// `v_j` of the replying node.
        v: CoordVec,
    },
    /// ABW probe carrying the prober's `u_i` and the probe rate
    /// (Algorithm 2, step 1).
    AbwProbe {
        /// `u_i` of the probing node.
        u: CoordVec,
    },
    /// ABW reply carrying the measured class and the target's
    /// pre-update `v_j` (step 3).
    AbwReply {
        /// The class label inferred at the target.
        x: f64,
        /// `v_j` snapshot.
        v: CoordVec,
    },
    /// Event-collapsed RTT round trip ([`ExchangeFidelity::Fused`]):
    /// delivered back at the prober when the reply would have arrived,
    /// carrying only the probe departure time.
    RttExchange {
        /// Simulated send time of the probe (seconds).
        sent_at: f64,
    },
    /// An encoded `dmf-proto` datagram (wire mode, see
    /// [`SimnetDriver::with_wire_version`]): the exact bytes a real
    /// agent would put on the network, decoded at delivery.
    Wire(Vec<u8>),
    /// Per-node probe timer.
    ProbeTick,
}

/// Byte-level statistics of a wire-mode run (see
/// [`SimnetDriver::with_wire_version`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Datagrams handed to the transport (probes, replies, both
    /// directions).
    pub messages_sent: u64,
    /// Total encoded bytes handed to the transport.
    pub bytes_sent: u64,
    /// Datagrams that failed to decode or carried a wrong rank.
    pub decode_errors: u64,
    /// v2 deltas dropped because their baseline was no longer held.
    pub stale_deltas: u64,
    /// Sequence gaps observed across all per-pair decoder contexts.
    pub gaps_detected: u64,
    /// Keyframes sent across all per-pair encoder contexts.
    pub keyframes_sent: u64,
}

/// How the driver executes an RTT probe/reply exchange.
///
/// The two modes train on the same measurement stream — an RTT
/// inferred from two jittered, lossy one-way delays, classified at τ —
/// and differ only in event mechanics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExchangeFidelity {
    /// Every protocol message is its own queue delivery (three events
    /// per probe cycle; the reply carries the target's coordinate
    /// snapshot taken at probe arrival). This is the
    /// maximum-fidelity mode the ABW protocol always uses — there the
    /// *target* trains on probe arrival, so the intermediate delivery
    /// is observable.
    PerMessage,
    /// One completion event per round trip (default for RTT). Valid
    /// because an RTT probe has no observable effect at the target —
    /// node `j` only echoes its coordinates, it does not learn — so
    /// the probe leg needs no event of its own. The coordinates are
    /// read at exchange completion (one reply-flight-time fresher
    /// than in per-message mode, ~tens of simulated milliseconds;
    /// statistically indistinguishable, see the fidelity tests).
    /// Roughly 2× faster: two events per cycle instead of three and
    /// no coordinate payloads through the queue.
    #[default]
    Fused,
}

/// Statistics of a simulated run.
#[derive(Clone, Copy, Debug, Default)]
pub struct RunnerStats {
    /// Probes sent.
    pub probes_sent: usize,
    /// Measurements completed (SGD updates at the prober side).
    pub measurements_completed: usize,
}

/// The transport surface the fused RTT protocol needs — satisfied by
/// both the single-queue [`SimNet`] and the sharded
/// [`dmf_simnet::ShardedSimNet`], so one implementation of the
/// protocol (probe firing, exchange completion, timer chaining)
/// drives both. Deliberately minimal: the fused path never uses
/// `send`, impairment hooks, or a ground-truth dataset.
pub(crate) trait RttTransport {
    /// Schedules a fused round trip departing at `at`; false = lost.
    fn roundtrip_at(&mut self, from: usize, to: usize, at: f64, msg: Msg) -> bool;
    /// Schedules a lossless timer after `delay` seconds.
    fn set_timer(&mut self, node: usize, delay: f64, msg: Msg);
    /// Schedules a lossless timer at absolute time `at`.
    fn set_timer_at(&mut self, node: usize, at: f64, msg: Msg);
}

impl RttTransport for SimNet<Msg> {
    fn roundtrip_at(&mut self, from: usize, to: usize, at: f64, msg: Msg) -> bool {
        SimNet::roundtrip_at(self, from, to, at, msg)
    }
    fn set_timer(&mut self, node: usize, delay: f64, msg: Msg) {
        SimNet::set_timer(self, node, delay, msg)
    }
    fn set_timer_at(&mut self, node: usize, at: f64, msg: Msg) {
        SimNet::set_timer_at(self, node, at, msg)
    }
}

impl RttTransport for dmf_simnet::ShardedSimNet<Msg> {
    fn roundtrip_at(&mut self, from: usize, to: usize, at: f64, msg: Msg) -> bool {
        dmf_simnet::ShardedSimNet::roundtrip_at(self, from, to, at, msg)
    }
    fn set_timer(&mut self, node: usize, delay: f64, msg: Msg) {
        dmf_simnet::ShardedSimNet::set_timer(self, node, delay, msg)
    }
    fn set_timer_at(&mut self, node: usize, at: f64, msg: Msg) {
        dmf_simnet::ShardedSimNet::set_timer_at(self, node, at, msg)
    }
}

/// Fused-mode probe departing node `i` at (current or future) time
/// `tick_at`: draws the neighbor and schedules the round trip. A lost
/// exchange would break the probe chain, so it falls back to a bare
/// timer that keeps the probe clock ticking.
pub(crate) fn fused_fire_probe<N: RttTransport>(
    net: &mut N,
    session: &mut Session,
    stats: &mut RunnerStats,
    probe_interval_s: f64,
    i: usize,
    tick_at: f64,
) {
    let j = session.neighbors.sample_neighbor(i, &mut session.rng);
    stats.probes_sent += 1;
    if !net.roundtrip_at(i, j, tick_at, Msg::RttExchange { sent_at: tick_at }) {
        let jitter = 0.9 + 0.2 * session.rng.gen::<f64>();
        net.set_timer_at(i, tick_at + probe_interval_s * jitter, Msg::ProbeTick);
    }
}

/// Re-arms node `i`'s probe timer one jittered interval ahead.
pub(crate) fn fused_rearm_timer<N: RttTransport>(
    net: &mut N,
    session: &mut Session,
    probe_interval_s: f64,
    i: usize,
) {
    let jitter = 0.9 + 0.2 * session.rng.gen::<f64>();
    net.set_timer(i, probe_interval_s * jitter, Msg::ProbeTick);
}

/// Fused steps 2–4 at node `i` (= `to`): the round trip against `j`
/// (= `from`) just completed at `now`; classify its duration at `tau`,
/// train against the target's live coordinates, and chain the next
/// probe.
#[allow(clippy::too_many_arguments)] // protocol state, not a config bag
pub(crate) fn fused_on_exchange<N: RttTransport>(
    net: &mut N,
    session: &mut Session,
    stats: &mut RunnerStats,
    probe_interval_s: f64,
    tau: f64,
    now: f64,
    i: usize,
    j: usize,
    sent_at: f64,
) {
    if !session.is_alive(i) {
        // Prober left with the exchange in flight: keep the probe
        // clock ticking for a future rejoin.
        fused_rearm_timer(net, session, probe_interval_s, i);
        return;
    }
    if session.is_alive(j) {
        let rtt_ms = (now - sent_at) * 1000.0;
        let x = Metric::Rtt.classify(rtt_ms, tau);
        let params = session.config.sgd;
        // Disjoint borrows of prober and target (i ≠ j by the
        // neighbor-set invariant) avoid snapshot copies.
        let (prober, target) = if i < j {
            let (lo, hi) = session.nodes.split_at_mut(j);
            (&mut lo[i], &hi[0])
        } else {
            let (lo, hi) = session.nodes.split_at_mut(i);
            (&mut hi[0], &lo[j])
        };
        prober.on_rtt_measurement(x, &target.coords.u, &target.coords.v, &params);
        session.measurements += 1;
        stats.measurements_completed += 1;
    }
    // Chain node i's next probe directly: one event per probe cycle
    // instead of a separate timer tick. The next tick nominally fires
    // at `sent_at + interval`, which lies beyond this completion
    // whenever the probe interval exceeds one RTT (the Vivaldi-style
    // regime); if a pathological config makes it land in the past,
    // fall back to an immediate timer so the schedule only ever
    // slips, never panics.
    let jitter = 0.9 + 0.2 * session.rng.gen::<f64>();
    let t_next = sent_at + probe_interval_s * jitter;
    if t_next > now {
        fused_fire_probe(net, session, stats, probe_interval_s, i, t_next);
    } else {
        net.set_timer(i, 0.0, Msg::ProbeTick);
    }
}

/// The simulated-network front-end: owns the transport (event queue,
/// latency/loss model, outstanding-probe bookkeeping) while the
/// [`Session`] owns the learning state. Advance it with
/// [`run_until`](Self::run_until) or through the [`Driver`] trait.
pub struct SimnetDriver {
    net: SimNet<Msg>,
    dataset: Dataset,
    tau: f64,
    /// Outstanding RTT probes per probing node: `(target, send time)`,
    /// at most one entry per target — a re-probe overwrites the
    /// timestamp, so a lost reply can never pair a stale entry with a
    /// fresh exchange. Sized by what is actually in flight (typically
    /// 0–2 entries, ≤ k under heavy loss), capacity reused for the
    /// whole run.
    pending_rtt: Vec<Vec<(usize, f64)>>,
    abw_prober: PathloadProber,
    probe_interval_s: f64,
    fidelity: ExchangeFidelity,
    /// Whether the per-node probe timers have been seeded (first run
    /// only — the chains re-arm themselves after that).
    timers_seeded: bool,
    /// Simulated seconds one [`Driver::round`] advances.
    quantum_s: f64,
    stats: RunnerStats,
    /// When set, every protocol leg travels as encoded `dmf-proto`
    /// bytes ([`Msg::Wire`]) in this version instead of native enum
    /// payloads.
    wire: Option<WireVersion>,
    wire_nonce: u64,
    /// v2 coordinate-stream state, keyed `(me, peer)`: encoders for
    /// streams this node sends toward the peer, decoders for streams
    /// received from it.
    enc_ctxs: HashMap<(usize, usize), EncoderContext>,
    dec_ctxs: HashMap<(usize, usize), DecoderContext>,
    wire_stats: WireStats,
}

impl SimnetDriver {
    /// Builds the transport for `session` over `dataset` (whose metric
    /// decides Algorithm 1 vs 2). The classification threshold comes
    /// from the session (set it via
    /// [`SessionBuilder::tau`](crate::session::SessionBuilder::tau)).
    ///
    /// Message delays always need an RTT-like latency model; ABW
    /// datasets use a uniform control-plane delay instead.
    pub fn new(
        session: &Session,
        dataset: Dataset,
        net_config: NetConfig,
    ) -> Result<Self, DmfsgdError> {
        let tau = session.tau().ok_or(ConfigError::MissingTau)?;
        Self::with_tau(session, dataset, tau, net_config)
    }

    /// [`new`](Self::new) with an explicit threshold, overriding the
    /// session's τ.
    pub fn with_tau(
        session: &Session,
        dataset: Dataset,
        tau: f64,
        net_config: NetConfig,
    ) -> Result<Self, DmfsgdError> {
        ConfigError::check_tau(tau)?;
        let n = dataset.len();
        if n != session.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: n,
                session: session.len(),
            }
            .into());
        }
        let net = if dataset.metric == Metric::Rtt {
            SimNet::from_rtt_dataset(&dataset, net_config)
        } else {
            SimNet::uniform(n, 0.04, net_config)
        };
        Ok(Self {
            net,
            dataset,
            tau,
            pending_rtt: (0..n).map(|_| Vec::with_capacity(4)).collect(),
            abw_prober: PathloadProber::default(),
            probe_interval_s: 1.0,
            fidelity: ExchangeFidelity::default(),
            timers_seeded: false,
            quantum_s: 10.0,
            stats: RunnerStats::default(),
            wire: None,
            wire_nonce: 0,
            enc_ctxs: HashMap::new(),
            dec_ctxs: HashMap::new(),
            wire_stats: WireStats::default(),
        })
    }

    /// Sets the probe timer period (default 1 s).
    pub fn with_probe_interval(mut self, seconds: f64) -> Result<Self, DmfsgdError> {
        let valid = seconds.is_finite() && seconds > 0.0;
        if !valid {
            return Err(ConfigError::ProbeInterval { seconds }.into());
        }
        self.probe_interval_s = seconds;
        Ok(self)
    }

    /// Sets the simulated seconds one [`Driver::round`] advances
    /// (default 10 s).
    pub fn with_quantum(mut self, seconds: f64) -> Result<Self, DmfsgdError> {
        let valid = seconds.is_finite() && seconds > 0.0;
        if !valid {
            return Err(ConfigError::Duration { seconds }.into());
        }
        self.quantum_s = seconds;
        Ok(self)
    }

    /// Selects how RTT exchanges execute (default
    /// [`ExchangeFidelity::Fused`]; ABW always runs per-message).
    pub fn with_exchange_fidelity(mut self, fidelity: ExchangeFidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Routes every protocol leg through the real `dmf-proto` codec:
    /// probes and replies travel as encoded datagrams ([`Msg::Wire`])
    /// in `version`, decoded at delivery, with v2 runs maintaining
    /// per-pair encoder/decoder contexts exactly like the UDP agents.
    /// Implies per-message event flow — the fused RTT shortcut never
    /// applies, since every leg must be a datagram to be counted in
    /// [`wire_stats`](Self::wire_stats).
    pub fn with_wire_version(mut self, version: WireVersion) -> Self {
        self.wire = Some(version);
        self
    }

    /// Run statistics.
    pub fn stats(&self) -> RunnerStats {
        self.stats
    }

    /// Byte-level statistics of a wire-mode run (all zeros unless
    /// [`with_wire_version`](Self::with_wire_version) was set), with
    /// gap/keyframe counters folded in from the per-pair contexts.
    pub fn wire_stats(&self) -> WireStats {
        let mut s = self.wire_stats;
        s.gaps_detected = self.dec_ctxs.values().map(|d| d.gaps_detected()).sum();
        s.keyframes_sent = self.enc_ctxs.values().map(|e| e.keyframes_sent()).sum();
        s
    }

    /// Current simulated time (the timestamp of the last delivered
    /// event; 0 before the first).
    pub fn now(&self) -> f64 {
        self.net.now()
    }

    // ---- scenario impairment hooks ----------------------------------
    //
    // Non-stationary scenarios mutate the transport mid-run: loss
    // epochs, partitions, stragglers, and ground-truth re-embeddings
    // (drift, congestion). Each hook validates here and forwards to
    // the simnet layer, so the scenario harness never trips a panic.

    /// Replaces the message-loss probability (scenario loss epochs).
    pub fn set_loss_probability(&mut self, probability: f64) -> Result<(), DmfsgdError> {
        if !(0.0..=1.0).contains(&probability) {
            return Err(ConfigError::LossProbability { probability }.into());
        }
        self.net.set_loss_probability(probability);
        Ok(())
    }

    /// Partitions the network: `island` nodes exchange no messages
    /// with the rest until [`clear_partition`](Self::clear_partition)
    /// (island-internal traffic still flows; ground truth is
    /// unchanged). Replaces any previous partition. An island holding
    /// the whole population is rejected — the cut would be empty,
    /// silently inverting the caller's intent.
    pub fn set_partition(&mut self, island: &[usize]) -> Result<(), DmfsgdError> {
        let n = self.net.len();
        if let Some(&bad) = island.iter().find(|&&i| i >= n) {
            return Err(MembershipError::UnknownNode { id: bad, slots: n }.into());
        }
        let mut member = vec![false; n];
        for &i in island {
            member[i] = true;
        }
        if member.iter().all(|&m| m) {
            return Err(ConfigError::FullPartition { nodes: n }.into());
        }
        self.net.set_partition(island);
        Ok(())
    }

    /// Partitions the network into arbitrary connectivity classes
    /// (one entry per node; messages pass only between equal
    /// classes), so several islands can be mutually cut at once — the
    /// shape `dmf_datasets::scenario::Impairments::partition_classes`
    /// produces. An empty slice heals everything.
    pub fn set_partition_classes(&mut self, classes: &[u32]) -> Result<(), DmfsgdError> {
        let n = self.net.len();
        if !classes.is_empty() && classes.len() != n {
            return Err(MembershipError::ProviderMismatch {
                provider: classes.len(),
                session: n,
            }
            .into());
        }
        self.net.set_partition_classes(classes);
        Ok(())
    }

    /// Heals any partition.
    pub fn clear_partition(&mut self) {
        self.net.clear_partition();
    }

    /// Multiplies every message leg touching `node` by `factor`
    /// (straggler injection; `1.0` restores the node).
    pub fn set_delay_factor(&mut self, node: usize, factor: f64) -> Result<(), DmfsgdError> {
        let n = self.net.len();
        if node >= n {
            return Err(MembershipError::UnknownNode { id: node, slots: n }.into());
        }
        if !(factor.is_finite() && factor > 0.0) {
            return Err(ConfigError::DelayFactor { factor }.into());
        }
        self.net.set_delay_factor(node, factor);
        Ok(())
    }

    /// Re-embeds the network on a new RTT ground truth (drift or
    /// congestion stepped the real delays): the delay table and the
    /// driver's dataset are replaced, so every message sent from now
    /// on — and therefore every measured RTT — reflects the new truth.
    /// Messages already in flight keep the delay they departed with.
    pub fn update_rtt_ground_truth(&mut self, dataset: Dataset) -> Result<(), DmfsgdError> {
        // Re-embedding needs an RTT-derived delay table on both sides:
        // an ABW driver has none, and a non-RTT truth defines none.
        // The error names whichever side is not RTT (the driver first).
        let offender = [self.dataset.metric, dataset.metric]
            .into_iter()
            .find(|&m| m != Metric::Rtt);
        if let Some(got) = offender {
            return Err(ConfigError::MetricMismatch {
                expected: Metric::Rtt,
                got,
            }
            .into());
        }
        if dataset.len() != self.net.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: dataset.len(),
                session: self.net.len(),
            }
            .into());
        }
        self.net.set_one_way_delays_from_rtt(&dataset);
        self.dataset = dataset;
        Ok(())
    }

    /// Runs the protocol until simulated time `deadline_s`, starting
    /// all probe timers at jittered offsets on the first call. Returns
    /// the measurements completed during this call.
    ///
    /// Events scheduled past `deadline_s` stay queued: the simulated
    /// clock never overshoots the deadline, and a later call with a
    /// larger deadline picks up exactly where this one stopped.
    pub fn run_until(
        &mut self,
        session: &mut Session,
        deadline_s: f64,
    ) -> Result<usize, DmfsgdError> {
        if session.len() != self.net.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: self.net.len(),
                session: session.len(),
            }
            .into());
        }
        let before = self.stats.measurements_completed;
        // Seed one probe timer per node on the first call only: every
        // timer chain re-arms itself, so a resumed run keeps the
        // configured probe rate instead of stacking a second chain.
        if !self.timers_seeded {
            self.timers_seeded = true;
            let n = self.net.len();
            for i in 0..n {
                let offset = session.rng.gen::<f64>() * self.probe_interval_s;
                self.net.set_timer(i, offset, Msg::ProbeTick);
            }
        }
        while let Some((now, delivery)) = self.net.next_delivery_before(deadline_s) {
            self.handle(session, now, delivery.from, delivery.to, delivery.msg);
        }
        Ok(self.stats.measurements_completed - before)
    }

    /// Fused-mode probe firing (shared with the sharded driver; see
    /// [`fused_fire_probe`]).
    fn fire_fused_probe(&mut self, session: &mut Session, i: usize, tick_at: f64) {
        fused_fire_probe(
            &mut self.net,
            session,
            &mut self.stats,
            self.probe_interval_s,
            i,
            tick_at,
        );
    }

    /// Re-arms node `i`'s probe timer one jittered interval ahead.
    fn rearm_timer(&mut self, session: &mut Session, i: usize) {
        fused_rearm_timer(&mut self.net, session, self.probe_interval_s, i);
    }

    /// Counts and sends one encoded datagram through the simnet.
    fn send_wire(&mut self, from: usize, to: usize, bytes: Vec<u8>) {
        self.wire_stats.messages_sent += 1;
        self.wire_stats.bytes_sent += bytes.len() as u64;
        self.net.send(from, to, Msg::Wire(bytes));
    }

    /// Wire-mode probe firing at node `i`: draw the neighbor, encode
    /// the probe in the configured version, remember the RTT pending
    /// entry, and put the bytes on the (lossy, delayed) network.
    fn fire_wire_probe(&mut self, session: &mut Session, version: WireVersion, i: usize, now: f64) {
        let j = session.neighbors.sample_neighbor(i, &mut session.rng);
        self.stats.probes_sent += 1;
        self.wire_nonce += 1;
        let nonce = self.wire_nonce;
        let bytes = match (version, self.dataset.metric) {
            (WireVersion::V1, Metric::Rtt) => encode(&Message::RttProbe { nonce }).to_vec(),
            (WireVersion::V2, Metric::Rtt) => {
                let ack = self.dec_ctxs.get(&(i, j)).and_then(|d| d.ack());
                encode_v2(&MessageV2::RttProbe {
                    nonce: nonce as u32,
                    ack,
                })
                .to_vec()
            }
            (WireVersion::V1, Metric::Abw) => encode(&Message::AbwProbe {
                nonce,
                rate_mbps: self.tau,
                u: session.nodes[i].coords.u.to_vec(),
            })
            .to_vec(),
            (WireVersion::V2, Metric::Abw) => {
                let ack = self.dec_ctxs.get(&(i, j)).and_then(|d| d.ack());
                let update = self
                    .enc_ctxs
                    .entry((i, j))
                    .or_default()
                    .encode(&session.nodes[i].coords.u.to_vec());
                encode_v2(&MessageV2::AbwProbe {
                    nonce: nonce as u32,
                    rate_mbps: self.tau,
                    ack,
                    update,
                })
                .to_vec()
            }
        };
        if self.dataset.metric == Metric::Rtt {
            // Same slot-per-target bookkeeping as the native path:
            // re-probing restarts the timestamp, so a stale entry can
            // never pair with a fresh reply.
            let pending = &mut self.pending_rtt[i];
            match pending.iter_mut().find(|(target, _)| *target == j) {
                Some(entry) => entry.1 = now,
                None => pending.push((j, now)),
            }
        }
        self.send_wire(i, j, bytes);
    }

    /// Applies a v2 update through the `(me, peer)` decoder context,
    /// mapping context errors onto the wire statistics. `None` means
    /// the update was dropped (stale baseline or rank mismatch) —
    /// recovery rides the next ack's `want_keyframe`.
    fn apply_update(
        &mut self,
        me: usize,
        peer: usize,
        update: &dmf_proto::CoordUpdate,
    ) -> Option<Vec<f64>> {
        match self.dec_ctxs.entry((me, peer)).or_default().apply(update) {
            Ok(coords) => Some(coords),
            Err(ContextError::StaleBaseline { .. }) => {
                self.wire_stats.stale_deltas += 1;
                None
            }
            Err(ContextError::RankMismatch { .. }) => {
                self.wire_stats.decode_errors += 1;
                None
            }
        }
    }

    /// Wire-mode dispatch: decode the datagram and run the same
    /// Algorithm 1/2 steps as the native handlers, through the codec
    /// (v1) or the codec plus per-pair contexts (v2). Mirrors the UDP
    /// agent's dispatch; replies always use the version the probe
    /// spoke.
    fn handle_wire(
        &mut self,
        session: &mut Session,
        now: f64,
        from: usize,
        to: usize,
        bytes: &[u8],
    ) {
        if !session.is_alive(to) {
            return;
        }
        let msg = match decode_any(bytes) {
            Ok(msg) => msg,
            Err(_) => {
                self.wire_stats.decode_errors += 1;
                return;
            }
        };
        let rank = session.config.rank;
        let params = session.config.sgd;
        match msg {
            WireMessage::V1(Message::RttProbe { nonce }) => {
                let (u, v) = session.nodes[to].rtt_reply();
                let reply = encode(&Message::RttReply {
                    nonce,
                    u: u.to_vec(),
                    v: v.to_vec(),
                })
                .to_vec();
                self.send_wire(to, from, reply);
            }
            WireMessage::V1(Message::RttReply { u, v, .. }) => {
                if u.len() != rank || v.len() != rank {
                    self.wire_stats.decode_errors += 1;
                    return;
                }
                self.complete_rtt_cycle(session, now, to, from, &u, &v);
            }
            WireMessage::V1(Message::AbwProbe { nonce, u, .. }) => {
                if u.len() != rank {
                    self.wire_stats.decode_errors += 1;
                    return;
                }
                let Some(x) = self.abw_prober.probe_class(
                    &self.dataset,
                    from,
                    to,
                    self.tau,
                    &mut session.rng,
                ) else {
                    return;
                };
                let v = session.nodes[to].on_abw_probe(x, &u, &params);
                let reply = encode(&Message::AbwReply {
                    nonce,
                    x,
                    v: v.to_vec(),
                })
                .to_vec();
                self.send_wire(to, from, reply);
            }
            WireMessage::V1(Message::AbwReply { x, v, .. }) => {
                if v.len() != rank {
                    self.wire_stats.decode_errors += 1;
                    return;
                }
                session.nodes[to].on_abw_reply(x, &v, &params);
                session.measurements += 1;
                self.stats.measurements_completed += 1;
            }
            WireMessage::V2(MessageV2::RttProbe { nonce, ack }) => {
                let enc = self.enc_ctxs.entry((to, from)).or_default();
                if let Some(ack) = ack {
                    enc.on_ack(ack);
                }
                // One update block carries u ‖ v under one sequence.
                let (u, v) = session.nodes[to].rtt_reply();
                let mut coords = u.to_vec();
                coords.extend_from_slice(&v.to_vec());
                let update = enc.encode(&coords);
                let reply = encode_v2(&MessageV2::RttReply { nonce, update }).to_vec();
                self.send_wire(to, from, reply);
            }
            WireMessage::V2(MessageV2::RttReply { update, .. }) => {
                let Some(coords) = self.apply_update(to, from, &update) else {
                    return;
                };
                if coords.len() != 2 * rank {
                    self.wire_stats.decode_errors += 1;
                    return;
                }
                let (u, v) = coords.split_at(rank);
                self.complete_rtt_cycle(session, now, to, from, u, v);
            }
            WireMessage::V2(MessageV2::AbwProbe {
                nonce, ack, update, ..
            }) => {
                if let Some(ack) = ack {
                    self.enc_ctxs.entry((to, from)).or_default().on_ack(ack);
                }
                let Some(u) = self.apply_update(to, from, &update) else {
                    return;
                };
                if u.len() != rank {
                    self.wire_stats.decode_errors += 1;
                    return;
                }
                let reply_ack = self.dec_ctxs.get(&(to, from)).and_then(|d| d.ack());
                let Some(x) = self.abw_prober.probe_class(
                    &self.dataset,
                    from,
                    to,
                    self.tau,
                    &mut session.rng,
                ) else {
                    return;
                };
                let v = session.nodes[to].on_abw_probe(x, &u, &params);
                let update = self
                    .enc_ctxs
                    .entry((to, from))
                    .or_default()
                    .encode(&v.to_vec());
                let reply = encode_v2(&MessageV2::AbwReply {
                    nonce,
                    x,
                    ack: reply_ack,
                    update,
                })
                .to_vec();
                self.send_wire(to, from, reply);
            }
            WireMessage::V2(MessageV2::AbwReply { x, ack, update, .. }) => {
                if let Some(ack) = ack {
                    self.enc_ctxs.entry((to, from)).or_default().on_ack(ack);
                }
                let Some(v) = self.apply_update(to, from, &update) else {
                    return;
                };
                if v.len() != rank {
                    self.wire_stats.decode_errors += 1;
                    return;
                }
                session.nodes[to].on_abw_reply(x, &v, &params);
                session.measurements += 1;
                self.stats.measurements_completed += 1;
            }
        }
    }

    /// RTT steps 3–4 at the prober in wire mode: pair the reply with
    /// its pending probe, infer the RTT from the exchange's simulated
    /// timing, classify at τ, and train.
    fn complete_rtt_cycle(
        &mut self,
        session: &mut Session,
        now: f64,
        i: usize,
        j: usize,
        u: &[f64],
        v: &[f64],
    ) {
        let pending = &mut self.pending_rtt[i];
        let Some(pos) = pending.iter().position(|&(target, _)| target == j) else {
            return; // duplicate or stale reply
        };
        let (_, sent_at) = pending.swap_remove(pos);
        let rtt_ms = (now - sent_at) * 1000.0;
        let x = Metric::Rtt.classify(rtt_ms, self.tau);
        let params = session.config.sgd;
        session.nodes[i].on_rtt_measurement(x, u, v, &params);
        session.measurements += 1;
        self.stats.measurements_completed += 1;
    }

    fn handle(&mut self, session: &mut Session, now: f64, from: usize, to: usize, msg: Msg) {
        match msg {
            Msg::ProbeTick => {
                let i = to;
                // A departed node keeps its timer chain idling (one
                // cheap self-event per interval) so a rejoined slot
                // resumes probing without external re-seeding.
                if !session.is_alive(i) {
                    self.rearm_timer(session, i);
                    return;
                }
                if let Some(version) = self.wire {
                    self.fire_wire_probe(session, version, i, now);
                    self.rearm_timer(session, i);
                    return;
                }
                if self.dataset.metric == Metric::Rtt && self.fidelity == ExchangeFidelity::Fused {
                    // The whole round trip is one future event (no
                    // outstanding-probe bookkeeping; the completion
                    // handler chains the next probe itself).
                    self.fire_fused_probe(session, i, now);
                    return;
                }
                let j = session.neighbors.sample_neighbor(i, &mut session.rng);
                self.stats.probes_sent += 1;
                match self.dataset.metric {
                    Metric::Rtt => {
                        // One slot per target: re-probing a neighbor
                        // whose reply is still pending (or was lost)
                        // restarts its timestamp, so a stale entry can
                        // never pair with a fresh reply.
                        let pending = &mut self.pending_rtt[i];
                        match pending.iter_mut().find(|(target, _)| *target == j) {
                            Some(entry) => entry.1 = now,
                            None => pending.push((j, now)),
                        }
                        self.net.send(i, j, Msg::RttProbe);
                    }
                    Metric::Abw => {
                        let u = session.nodes[i].coords.u.clone();
                        self.net.send(i, j, Msg::AbwProbe { u });
                    }
                }
                // Re-arm the timer.
                self.rearm_timer(session, i);
            }
            Msg::Wire(bytes) => self.handle_wire(session, now, from, to, &bytes),
            Msg::RttProbe => {
                // Step 2 at node j: reply with coordinates (departed
                // nodes answer no probes; the prober's pending entry
                // is overwritten by its next probe of that target).
                if !session.is_alive(to) {
                    return;
                }
                let (u, v) = session.nodes[to].rtt_reply();
                self.net.send(to, from, Msg::RttReply { u, v });
            }
            Msg::RttExchange { sent_at } => {
                // Fused steps 2–4 at node i (shared with the sharded
                // driver; see [`fused_on_exchange`]).
                fused_on_exchange(
                    &mut self.net,
                    session,
                    &mut self.stats,
                    self.probe_interval_s,
                    self.tau,
                    now,
                    to,
                    from,
                    sent_at,
                );
            }
            Msg::RttReply { u, v } => {
                // Steps 3–4 at node i: infer the RTT from the measured
                // round-trip time of this very exchange.
                let i = to;
                let j = from;
                if !session.is_alive(i) {
                    return;
                }
                let pending = &mut self.pending_rtt[i];
                let Some(pos) = pending.iter().position(|&(target, _)| target == j) else {
                    return; // duplicate or stale reply
                };
                let (_, sent_at) = pending.swap_remove(pos);
                let rtt_ms = (now - sent_at) * 1000.0;
                let x = Metric::Rtt.classify(rtt_ms, self.tau);
                let params = session.config.sgd;
                session.nodes[i].on_rtt_measurement(x, &u, &v, &params);
                session.measurements += 1;
                self.stats.measurements_completed += 1;
            }
            Msg::AbwProbe { u } => {
                // Steps 2–4 at target j: measure, snapshot v_j, update.
                let j = to;
                let i = from;
                if !session.is_alive(j) {
                    return;
                }
                let Some(x) =
                    self.abw_prober
                        .probe_class(&self.dataset, i, j, self.tau, &mut session.rng)
                else {
                    return; // pair not in ground truth
                };
                let params = session.config.sgd;
                let v = session.nodes[j].on_abw_probe(x, &u, &params);
                self.net.send(j, i, Msg::AbwReply { x, v });
            }
            Msg::AbwReply { x, v } => {
                // Step 5 at node i.
                if !session.is_alive(to) {
                    return;
                }
                let params = session.config.sgd;
                session.nodes[to].on_abw_reply(x, &v, &params);
                session.measurements += 1;
                self.stats.measurements_completed += 1;
            }
        }
    }
}

impl std::fmt::Debug for SimnetDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimnetDriver")
            .field("nodes", &self.net.len())
            .field("metric", &self.dataset.metric)
            .field("tau", &self.tau)
            .field("probe_interval_s", &self.probe_interval_s)
            .field("fidelity", &self.fidelity)
            .field("quantum_s", &self.quantum_s)
            .field("wire", &self.wire)
            .field("now", &self.net.now())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Driver for SimnetDriver {
    /// One round = one quantum of simulated time (see
    /// [`with_quantum`](Self::with_quantum)).
    fn round(&mut self, session: &mut Session) -> Result<usize, DmfsgdError> {
        let deadline = self.net.now() + self.quantum_s;
        self.run_until(session, deadline)
    }
}

/// A DMFSGD deployment over the simulated network: a [`Session`]
/// bundled with its [`SimnetDriver`] for the common
/// build-train-evaluate flow.
#[derive(Debug)]
pub struct SimnetRunner {
    session: Session,
    driver: SimnetDriver,
}

impl SimnetRunner {
    /// Builds a runner over `dataset` (RTT or ABW decides the
    /// algorithm), classifying at `tau`.
    ///
    /// The internal session derives its RNG stream from
    /// `config.seed ^ 0x5117_babe` — kept from the historical runner
    /// so simulated runs stay reproducible across releases —
    /// distinguishing it from an oracle-driven session with the same
    /// seed.
    pub fn new(
        dataset: Dataset,
        tau: f64,
        config: DmfsgdConfig,
        net_config: NetConfig,
    ) -> Result<Self, DmfsgdError> {
        let mut session_config = config;
        session_config.seed ^= 0x5117_babe;
        let session = SessionBuilder::from_config(session_config)
            .nodes(dataset.len())
            .tau(tau)
            .build()?;
        let driver = SimnetDriver::new(&session, dataset, net_config)?;
        Ok(Self { session, driver })
    }

    /// Sets the probe timer period (default 1 s).
    pub fn with_probe_interval(mut self, seconds: f64) -> Result<Self, DmfsgdError> {
        self.driver = self.driver.with_probe_interval(seconds)?;
        Ok(self)
    }

    /// Selects how RTT exchanges execute (default
    /// [`ExchangeFidelity::Fused`]; ABW always runs per-message).
    pub fn with_exchange_fidelity(mut self, fidelity: ExchangeFidelity) -> Self {
        self.driver = self.driver.with_exchange_fidelity(fidelity);
        self
    }

    /// Routes every protocol leg through the real `dmf-proto` codec
    /// (see [`SimnetDriver::with_wire_version`]).
    pub fn with_wire_version(mut self, version: WireVersion) -> Self {
        self.driver = self.driver.with_wire_version(version);
        self
    }

    /// Byte-level statistics of a wire-mode run (see
    /// [`SimnetDriver::wire_stats`]).
    pub fn wire_stats(&self) -> WireStats {
        self.driver.wire_stats()
    }

    /// The underlying session (live coordinates, membership, queries).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Mutable access to the underlying session (membership changes
    /// between runs).
    pub fn session_mut(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Splits the runner into its session and driver.
    pub fn into_parts(self) -> (Session, SimnetDriver) {
        (self.session, self.driver)
    }

    /// Immutable access to the nodes.
    pub fn nodes(&self) -> &[DmfsgdNode] {
        self.session.nodes()
    }

    /// Run statistics.
    pub fn stats(&self) -> RunnerStats {
        self.driver.stats()
    }

    /// Current simulated time (the timestamp of the last delivered
    /// event; 0 before the first).
    pub fn now(&self) -> f64 {
        self.driver.now()
    }

    /// Raw predictor score `u_i · v_j`.
    pub fn raw_score(&self, i: usize, j: usize) -> f64 {
        self.session.raw_score_unchecked(i, j)
    }

    /// Materializes all pairwise scores for evaluation as one batched
    /// `U·Vᵀ` product (bitwise-identical to evaluating
    /// [`raw_score`](Self::raw_score) per pair, orders of magnitude
    /// faster at population scale).
    pub fn predicted_scores(&self) -> Matrix {
        self.session.predicted_scores()
    }

    /// [`predicted_scores`](Self::predicted_scores) into an existing
    /// matrix, reusing its allocation across repeated evaluations.
    pub fn predicted_scores_into(&self, out: &mut Matrix) {
        self.session.predicted_scores_into(out);
    }

    /// Reference implementation of [`predicted_scores`]: one virtual
    /// per-pair dot at a time. Kept for the equivalence property tests
    /// and as documentation of the semantics.
    ///
    /// [`predicted_scores`]: Self::predicted_scores
    pub fn predicted_scores_naive(&self) -> Matrix {
        self.session.predicted_scores_naive()
    }

    /// Runs the protocol until simulated time `duration_s`, starting
    /// all probe timers at jittered offsets.
    ///
    /// Events scheduled past `duration_s` stay queued: the simulated
    /// clock never overshoots the deadline, and a later `run_for` with
    /// a larger deadline picks up exactly where this one stopped.
    pub fn run_for(&mut self, duration_s: f64) -> Result<usize, DmfsgdError> {
        let valid = duration_s.is_finite() && duration_s > 0.0;
        if !valid {
            return Err(ConfigError::Duration {
                seconds: duration_s,
            }
            .into());
        }
        self.driver.run_until(&mut self.session, duration_s)
    }

    /// Consumes the runner and returns the trained nodes. Evaluation
    /// works on [`predicted_scores`](Self::predicted_scores) directly.
    pub fn into_nodes(self) -> Vec<DmfsgdNode> {
        self.session.into_nodes()
    }
}

/// All pairwise scores `u_i · v_j` (diagonal zeroed) as one `U·Vᵀ`
/// product over coordinate rows packed contiguously.
pub(crate) fn batched_scores(nodes: &[DmfsgdNode]) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    batched_scores_into(nodes, &mut out);
    out
}

/// [`batched_scores`] into an existing matrix, reusing its allocation
/// (repeated evaluation never re-faults the n² buffer).
pub(crate) fn batched_scores_into(nodes: &[DmfsgdNode], out: &mut Matrix) {
    let n = nodes.len();
    if n == 0 {
        *out = Matrix::zeros(0, 0);
        return;
    }
    let r = nodes[0].coords.rank();
    // Fully allocation-free per call: all three operand views (U as
    // `lhs`, V as `rhs`, the kernels' streamed Vᵀ as `rhs_t`) are
    // packed into one reusable 64-byte-aligned thread-local scratch
    // and handed to the packed kernel entry point. Repeated evaluation
    // (convergence tracking, the perf suite) touches the allocator for
    // nothing but the first call's `out` buffer.
    dmf_linalg::simd::with_aligned_scratch(3 * n * r, |scratch| {
        let (ud, rest) = scratch.split_at_mut(n * r);
        let (vd, vt) = rest.split_at_mut(n * r);
        for (i, node) in nodes.iter().enumerate() {
            ud[i * r..(i + 1) * r].copy_from_slice(&node.coords.u);
            vd[i * r..(i + 1) * r].copy_from_slice(&node.coords.v);
        }
        for k in 0..r {
            for (i, row) in vd.chunks_exact(r).enumerate() {
                vt[k * n + i] = row[k];
            }
        }
        dmf_linalg::kernels::matmul_nt_packed_into(ud, vd, vt, n, r, n, out);
    });
    for i in 0..n {
        out[(i, i)] = 0.0;
    }
}

/// [`batched_scores_into`] through the typed-error matmul surface: a
/// `u`/`v` rank mismatch comes back as [`DmfsgdError::Shape`], and a
/// node whose ranks disagree with node 0's as
/// [`DmfsgdError::Import`] — never a panic. On error `out` is left
/// untouched. Valid sessions can't fail here, so the infallible
/// packing above stays the hot path.
pub(crate) fn try_batched_scores_into(
    nodes: &[DmfsgdNode],
    out: &mut Matrix,
) -> Result<(), DmfsgdError> {
    let n = nodes.len();
    if n == 0 {
        *out = Matrix::zeros(0, 0);
        return Ok(());
    }
    let ru = nodes[0].coords.u.len();
    let rv = nodes[0].coords.v.len();
    for (i, node) in nodes.iter().enumerate() {
        if node.coords.u.len() != ru || node.coords.v.len() != rv {
            return Err(DmfsgdError::Import(format!(
                "node {i} coordinate ranks ({}, {}) differ from node 0's ({ru}, {rv})",
                node.coords.u.len(),
                node.coords.v.len()
            )));
        }
    }
    let mut ud = Vec::with_capacity(n * ru);
    let mut vd = Vec::with_capacity(n * rv);
    for node in nodes {
        ud.extend_from_slice(&node.coords.u);
        vd.extend_from_slice(&node.coords.v);
    }
    let u = Matrix::from_vec(n, ru, ud);
    let v = Matrix::from_vec(n, rv, vd);
    u.try_matmul_nt_into(&v, out)?;
    for i in 0..n {
        out[(i, i)] = 0.0;
    }
    Ok(())
}

/// Fraction of ordered pairs on which an oracle-trained session and a
/// simnet-trained runner predict the same class — the
/// cross-front-end agreement metric (pinned by
/// `tests/decentralization.rs`).
pub fn sign_agreement(session: &Session, runner: &SimnetRunner) -> f64 {
    let n = session.len().min(runner.nodes().len());
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            total += 1;
            if (session.raw_score_unchecked(i, j) >= 0.0) == (runner.raw_score(i, j) >= 0.0) {
                agree += 1;
            }
        }
    }
    agree as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;

    fn sign_accuracy(runner: &SimnetRunner, class: &dmf_datasets::ClassMatrix) -> f64 {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, j) in class.mask.iter_known() {
            total += 1;
            let predicted = if runner.raw_score(i, j) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if Some(predicted) == class.label(i, j) {
                ok += 1;
            }
        }
        ok as f64 / total as f64
    }

    #[test]
    fn rtt_protocol_learns_over_messages() {
        let d = meridian_like(40, 1);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .expect("valid")
                .with_probe_interval(0.5)
                .expect("positive interval");
        runner.run_for(150.0).expect("run");
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.7, "message-driven accuracy {acc}");
        assert!(runner.stats().measurements_completed > 1000);
    }

    #[test]
    fn per_message_fidelity_learns_like_fused() {
        // The event-collapsed default and the full three-event flow
        // must both converge, with comparable accuracy and matching
        // probe accounting.
        let run_with = |fidelity: ExchangeFidelity| {
            let d = meridian_like(40, 1);
            let tau = d.median();
            let cm = d.classify(tau);
            let mut runner =
                SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                    .expect("valid")
                    .with_probe_interval(0.5)
                    .expect("positive interval")
                    .with_exchange_fidelity(fidelity);
            runner.run_for(150.0).expect("run");
            (sign_accuracy(&runner, &cm), runner.stats())
        };
        let (acc_fused, stats_fused) = run_with(ExchangeFidelity::Fused);
        let (acc_msg, stats_msg) = run_with(ExchangeFidelity::PerMessage);
        assert!(acc_msg > 0.7, "per-message accuracy {acc_msg}");
        assert!(acc_fused > 0.7, "fused accuracy {acc_fused}");
        assert!(
            (acc_fused - acc_msg).abs() < 0.1,
            "fidelity modes diverge: fused {acc_fused} vs per-message {acc_msg}"
        );
        // Same probe schedule in both modes, except that the fused
        // chain accounts each probe when it is scheduled (up to one
        // interval ahead per node) and jitter streams differ at the
        // run's tail — bounded by a couple of probes per node.
        let n = 40;
        assert!(
            stats_fused.probes_sent.abs_diff(stats_msg.probes_sent) <= 2 * n,
            "probe accounting diverged: fused {} vs per-message {}",
            stats_fused.probes_sent,
            stats_msg.probes_sent
        );
    }

    #[test]
    fn per_message_fidelity_survives_loss() {
        let d = meridian_like(30, 3);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                loss_probability: 0.3,
                ..NetConfig::default()
            },
        )
        .expect("valid")
        .with_probe_interval(0.5)
        .expect("positive interval")
        .with_exchange_fidelity(ExchangeFidelity::PerMessage);
        runner.run_for(200.0).expect("run");
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "per-message lossy accuracy {acc}");
    }

    #[test]
    fn abw_protocol_learns_over_messages() {
        let d = hps3_like(40, 2);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .expect("valid")
                .with_probe_interval(0.5)
                .expect("positive interval");
        runner.run_for(150.0).expect("run");
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "ABW message-driven accuracy {acc}");
    }

    #[test]
    fn survives_heavy_message_loss() {
        // Fault injection: 30% loss must slow, not break, convergence.
        let d = meridian_like(30, 3);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                loss_probability: 0.3,
                ..NetConfig::default()
            },
        )
        .expect("valid")
        .with_probe_interval(0.5)
        .expect("positive interval");
        runner.run_for(200.0).expect("run");
        let stats = runner.stats();
        assert!(
            stats.measurements_completed < stats.probes_sent,
            "loss must cost some measurements"
        );
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "lossy accuracy {acc}");
    }

    #[test]
    fn measured_rtt_comes_from_simulated_latency() {
        // With zero jitter, inferring RTT from message timing must
        // classify exactly like the ground truth.
        let d = meridian_like(25, 4);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                delay_jitter_sigma: 0.0,
                ..NetConfig::default()
            },
        )
        .expect("valid")
        .with_probe_interval(0.3)
        .expect("positive interval");
        runner.run_for(120.0).expect("run");
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.75, "noise-free timing accuracy {acc}");
    }

    #[test]
    fn deterministic_given_seed() {
        let build = || {
            let d = meridian_like(20, 5);
            let tau = d.median();
            let mut r =
                SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                    .expect("valid");
            r.run_for(30.0).expect("run");
            r.predicted_scores()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn constructor_and_knobs_return_typed_errors() {
        let d = meridian_like(20, 6);
        let tau = d.median();
        assert!(matches!(
            SimnetRunner::new(
                d.clone(),
                -1.0,
                DmfsgdConfig::paper_defaults(),
                NetConfig::default()
            )
            .unwrap_err(),
            DmfsgdError::Config(ConfigError::Tau { .. })
        ));
        let mut small = DmfsgdConfig::paper_defaults();
        small.k = 30;
        assert!(matches!(
            SimnetRunner::new(d.clone(), tau, small, NetConfig::default()).unwrap_err(),
            DmfsgdError::Config(ConfigError::TooFewNodes { .. })
        ));
        let runner = SimnetRunner::new(
            d.clone(),
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig::default(),
        )
        .expect("valid");
        assert!(matches!(
            runner.with_probe_interval(0.0).unwrap_err(),
            DmfsgdError::Config(ConfigError::ProbeInterval { .. })
        ));
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .expect("valid");
        assert!(matches!(
            runner.run_for(0.0).unwrap_err(),
            DmfsgdError::Config(ConfigError::Duration { .. })
        ));
    }

    #[test]
    fn driver_rounds_advance_in_quanta() {
        let d = meridian_like(25, 9);
        let tau = d.median();
        let mut session = Session::builder()
            .nodes(25)
            .k(8)
            .seed(9)
            .tau(tau)
            .build()
            .expect("valid");
        let mut driver = SimnetDriver::new(&session, d, NetConfig::default())
            .expect("valid")
            .with_quantum(15.0)
            .expect("positive quantum");
        let applied = session.drive(&mut driver, 4).expect("drive");
        assert!(driver.now() <= 60.0, "clock overshot the rounds");
        assert!(applied > 0, "rounds must complete measurements");
        assert_eq!(applied, driver.stats().measurements_completed);
        assert_eq!(applied, session.measurements_used());
    }

    #[test]
    fn churn_mid_simulation_keeps_learning() {
        let d = meridian_like(30, 10);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut session = Session::builder()
            .nodes(30)
            .k(8)
            .seed(10)
            .tau(tau)
            .build()
            .expect("valid");
        let mut driver = SimnetDriver::new(&session, d, NetConfig::default())
            .expect("valid")
            .with_probe_interval(0.5)
            .expect("positive interval");
        driver.run_until(&mut session, 60.0).expect("warmup");
        session.leave(4).expect("leave");
        session.leave(11).expect("leave");
        driver.run_until(&mut session, 120.0).expect("degraded run");
        session.join().expect("rejoin");
        session.join().expect("rejoin");
        driver.run_until(&mut session, 220.0).expect("recovery");
        // Accuracy over alive pairs after the full churn cycle.
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, j) in cm.mask.iter_known() {
            total += 1;
            let predicted = if session.raw_score_unchecked(i, j) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if Some(predicted) == cm.label(i, j) {
                ok += 1;
            }
        }
        let acc = ok as f64 / total as f64;
        assert!(acc > 0.65, "post-churn simnet accuracy {acc}");
    }

    #[test]
    fn run_for_never_overshoots_deadline() {
        // Regression: the historical loop peeked the *last-delivered*
        // time, so one event past the deadline still got through and
        // the clock ended beyond `duration_s`.
        let d = meridian_like(25, 6);
        let tau = d.median();
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .expect("valid")
                .with_probe_interval(0.37)
                .expect("positive interval");
        let duration = 41.3;
        runner.run_for(duration).expect("run");
        assert!(
            runner.now() <= duration,
            "simulated clock {} overshot the {duration}s deadline",
            runner.now()
        );
        // And the deadline region was actually reached, not stopped short.
        assert!(runner.now() > duration - 2.0 * 0.37, "stopped early");
    }

    #[test]
    fn run_for_resumes_where_it_stopped() {
        let d = meridian_like(20, 7);
        let tau = d.median();
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .expect("valid");
        runner.run_for(20.0).expect("run");
        let mid = runner.stats().measurements_completed;
        runner.run_for(40.0).expect("run");
        assert!(runner.now() <= 40.0);
        let second_half = runner.stats().measurements_completed - mid;
        // Resuming must keep the configured probe rate, not stack a
        // second timer chain per node (which would double the rate).
        assert!(second_half > mid / 2, "resumed run stalled");
        assert!(
            second_half < mid * 2,
            "resumed run probes too fast: {mid} then {second_half} — timer chains stacked?"
        );
    }

    #[test]
    fn scenario_hooks_validate_with_typed_errors() {
        let d = meridian_like(20, 12);
        let tau = d.median();
        let mut session = Session::builder()
            .nodes(20)
            .k(6)
            .seed(12)
            .tau(tau)
            .build()
            .expect("valid");
        let mut driver =
            SimnetDriver::new(&session, d.clone(), NetConfig::default()).expect("valid");
        assert!(matches!(
            driver.set_loss_probability(1.5).unwrap_err(),
            DmfsgdError::Config(ConfigError::LossProbability { .. })
        ));
        assert!(matches!(
            driver.set_partition(&[3, 99]).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { id: 99, slots: 20 })
        ));
        let everyone: Vec<usize> = (0..20).collect();
        assert!(matches!(
            driver.set_partition(&everyone).unwrap_err(),
            DmfsgdError::Config(ConfigError::FullPartition { nodes: 20 })
        ));
        assert!(matches!(
            driver.set_partition_classes(&[1, 2, 3]).unwrap_err(),
            DmfsgdError::Membership(MembershipError::ProviderMismatch {
                provider: 3,
                session: 20
            })
        ));
        assert!(matches!(
            driver.set_delay_factor(0, 0.0).unwrap_err(),
            DmfsgdError::Config(ConfigError::DelayFactor { .. })
        ));
        assert!(matches!(
            driver.set_delay_factor(99, 2.0).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { .. })
        ));
        assert!(matches!(
            driver
                .update_rtt_ground_truth(meridian_like(10, 1))
                .unwrap_err(),
            DmfsgdError::Membership(MembershipError::ProviderMismatch {
                provider: 10,
                session: 20
            })
        ));
        assert!(matches!(
            driver
                .update_rtt_ground_truth(hps3_like(20, 1))
                .unwrap_err(),
            DmfsgdError::Config(ConfigError::MetricMismatch { .. })
        ));
        let mut abw_session = Session::builder()
            .nodes(20)
            .k(6)
            .seed(12)
            .tau(hps3_like(20, 2).median())
            .build()
            .expect("valid");
        let mut abw_driver =
            SimnetDriver::new(&abw_session, hps3_like(20, 2), NetConfig::default()).expect("valid");
        assert!(matches!(
            abw_driver
                .update_rtt_ground_truth(meridian_like(20, 1))
                .unwrap_err(),
            DmfsgdError::Config(ConfigError::MetricMismatch { .. })
        ));
        // The happy paths still drive the protocol.
        driver.set_loss_probability(0.1).expect("valid p");
        driver.set_partition(&[0, 1]).expect("valid island");
        driver.clear_partition();
        driver.set_delay_factor(0, 2.0).expect("valid factor");
        driver.update_rtt_ground_truth(d).expect("same truth");
        driver.run_until(&mut session, 10.0).expect("runs");
        abw_driver.run_until(&mut abw_session, 10.0).expect("runs");
    }

    #[test]
    fn ground_truth_re_embedding_is_learned() {
        // Train to convergence, step the ground truth (a congestion
        // that flips many classes at the fixed τ), keep training: the
        // predictor must track the *new* truth.
        let d = meridian_like(30, 13);
        let tau = d.median();
        let mut session = Session::builder()
            .nodes(30)
            .k(8)
            .seed(13)
            .tau(tau)
            .build()
            .expect("valid");
        let mut driver = SimnetDriver::new(&session, d.clone(), NetConfig::default())
            .expect("valid")
            .with_probe_interval(0.5)
            .expect("positive interval");
        driver.run_until(&mut session, 150.0).expect("warmup");

        let mut congested = d;
        congested.scale_values(2.5); // most paths now classify "bad" at τ
        let new_classes = congested.classify(tau);
        driver
            .update_rtt_ground_truth(congested)
            .expect("same shape");
        let accuracy = |session: &Session, cm: &dmf_datasets::ClassMatrix| {
            let mut ok = 0usize;
            let mut total = 0usize;
            for (i, j) in cm.mask.iter_known() {
                total += 1;
                let predicted = if session.raw_score_unchecked(i, j) >= 0.0 {
                    1.0
                } else {
                    -1.0
                };
                if Some(predicted) == cm.label(i, j) {
                    ok += 1;
                }
            }
            ok as f64 / total as f64
        };
        let stale = accuracy(&session, &new_classes);
        driver.run_until(&mut session, 450.0).expect("relearn");
        let adapted = accuracy(&session, &new_classes);
        assert!(
            adapted > stale + 0.1 && adapted > 0.7,
            "re-embedding not tracked: {stale} → {adapted}"
        );
    }

    #[test]
    fn partition_epoch_stalls_only_cross_island_learning() {
        let d = meridian_like(24, 14);
        let tau = d.median();
        let mut session = Session::builder()
            .nodes(24)
            .k(8)
            .seed(14)
            .tau(tau)
            .build()
            .expect("valid");
        let mut driver = SimnetDriver::new(&session, d, NetConfig::default())
            .expect("valid")
            .with_probe_interval(0.5)
            .expect("positive interval");
        driver.run_until(&mut session, 30.0).expect("warmup");
        let island: Vec<usize> = (0..6).collect();
        driver.set_partition(&island).expect("valid island");
        let before = driver.stats().measurements_completed;
        driver
            .run_until(&mut session, 90.0)
            .expect("partitioned run");
        let during = driver.stats().measurements_completed - before;
        assert!(during > 0, "intra-side probing must continue");
        driver.clear_partition();
        driver.run_until(&mut session, 150.0).expect("healed run");
        let healed = driver.stats().measurements_completed - before - during;
        assert!(
            healed > during,
            "healing must raise the measurement rate ({during} during vs {healed} after)"
        );
    }

    #[test]
    fn wire_v2_learns_and_is_deterministic() {
        let build = || {
            let d = meridian_like(30, 21);
            let tau = d.median();
            let cm = d.classify(tau);
            let mut runner =
                SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                    .expect("valid")
                    .with_probe_interval(0.5)
                    .expect("positive interval")
                    .with_wire_version(WireVersion::V2);
            runner.run_for(150.0).expect("run");
            let acc = sign_accuracy(&runner, &cm);
            (acc, runner.wire_stats(), runner.predicted_scores())
        };
        let (acc, stats, scores) = build();
        assert!(acc > 0.7, "wire-v2 accuracy {acc}");
        assert!(stats.bytes_sent > 0 && stats.messages_sent > 0);
        assert!(stats.keyframes_sent > 0, "cadence must send keyframes");
        assert_eq!(stats.decode_errors, 0, "clean simnet, no corruption");
        let (_, stats2, scores2) = build();
        assert_eq!(scores, scores2, "wire mode must stay deterministic");
        assert_eq!(stats, stats2, "wire stats must stay deterministic");
    }

    #[test]
    fn wire_v2_survives_loss_with_gap_recovery() {
        let d = meridian_like(30, 22);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut runner = SimnetRunner::new(
            d,
            tau,
            DmfsgdConfig::paper_defaults(),
            NetConfig {
                loss_probability: 0.3,
                ..NetConfig::default()
            },
        )
        .expect("valid")
        .with_probe_interval(0.5)
        .expect("positive interval")
        .with_wire_version(WireVersion::V2);
        runner.run_for(200.0).expect("run");
        let acc = sign_accuracy(&runner, &cm);
        assert!(acc > 0.65, "lossy wire-v2 accuracy {acc}");
        let stats = runner.wire_stats();
        assert!(stats.gaps_detected > 0, "30% loss must surface as gaps");
        assert!(stats.keyframes_sent > 0, "gaps must trigger keyframes");
    }

    #[test]
    fn wire_v2_spends_far_fewer_bytes_than_v1() {
        // The headline robustness/efficiency claim at the driver
        // level: same workload, same learning outcome, ≥ 3× fewer
        // bytes per completed probe cycle on the delta protocol.
        let run_with = |version: WireVersion| {
            let d = meridian_like(30, 23);
            let tau = d.median();
            let cm = d.classify(tau);
            let mut runner =
                SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                    .expect("valid")
                    .with_probe_interval(0.5)
                    .expect("positive interval")
                    .with_wire_version(version);
            runner.run_for(150.0).expect("run");
            let cycles = runner.stats().measurements_completed as f64;
            let per_cycle = runner.wire_stats().bytes_sent as f64 / cycles;
            (sign_accuracy(&runner, &cm), per_cycle)
        };
        let (acc_v1, bytes_v1) = run_with(WireVersion::V1);
        let (acc_v2, bytes_v2) = run_with(WireVersion::V2);
        assert!(acc_v1 > 0.7, "wire-v1 accuracy {acc_v1}");
        assert!(acc_v2 > 0.7, "wire-v2 accuracy {acc_v2}");
        let ratio = bytes_v1 / bytes_v2;
        assert!(
            ratio >= 3.0,
            "v2 must cut bytes/cycle ≥ 3×: v1 {bytes_v1:.1} vs v2 {bytes_v2:.1} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn wire_mode_abw_learns_both_versions() {
        for version in [WireVersion::V1, WireVersion::V2] {
            let d = hps3_like(30, 24);
            let tau = d.median();
            let cm = d.classify(tau);
            let mut runner =
                SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                    .expect("valid")
                    .with_probe_interval(0.5)
                    .expect("positive interval")
                    .with_wire_version(version);
            runner.run_for(150.0).expect("run");
            let acc = sign_accuracy(&runner, &cm);
            assert!(acc > 0.65, "ABW wire-{version} accuracy {acc}");
        }
    }

    #[test]
    fn batched_scores_match_naive_per_pair() {
        let d = meridian_like(30, 8);
        let tau = d.median();
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .expect("valid");
        runner.run_for(25.0).expect("run");
        let batched = runner.predicted_scores();
        let naive = runner.predicted_scores_naive();
        assert_eq!(batched, naive, "batched U·Vᵀ must equal per-pair dots");
    }

    #[test]
    fn try_predicted_scores_matches_infallible_on_valid_sessions() {
        let d = meridian_like(20, 3);
        let tau = d.median();
        let mut runner =
            SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
                .expect("valid");
        runner.run_for(15.0).expect("run");
        let want = runner.session().predicted_scores();
        let got = runner
            .session()
            .try_predicted_scores()
            .expect("valid shapes");
        assert_eq!(got, want);
    }

    #[test]
    fn try_predicted_scores_surfaces_shape_mismatch_as_typed_error() {
        let mut session = crate::session::SessionBuilder::new()
            .nodes(12)
            .tau(60.0)
            .build()
            .expect("valid");
        // Hand-corrupt one node's v rank: unreachable through imports
        // (rank-validated), but exactly the inconsistency the fallible
        // surface must catch instead of panicking.
        let r = session.nodes[0].coords.v.len();
        for node in &mut session.nodes {
            node.coords.v = CoordVec::zeros(r + 2);
        }
        let mut out = Matrix::zeros(0, 0);
        let err = session
            .try_predicted_scores_into(&mut out)
            .expect_err("u/v rank mismatch");
        match err {
            DmfsgdError::Shape(e) => {
                assert_eq!(e.op, "matmul_nt");
                assert_eq!(e.lhs.1, r, "lhs inner dim is the u rank");
                assert_eq!(e.rhs.1, r + 2, "rhs inner dim is the corrupted v rank");
            }
            other => panic!("expected Shape error, got {other:?}"),
        }
        assert_eq!(out.rows(), 0, "output untouched on error");
        // A per-node inconsistency (one node disagreeing with node 0)
        // is an import-shaped inconsistency, also typed.
        session.nodes[3].coords.v = CoordVec::zeros(r);
        let err = session
            .try_predicted_scores_into(&mut out)
            .expect_err("per-node rank mismatch");
        assert!(matches!(err, DmfsgdError::Import(_)), "got {err:?}");
    }
}
