//! DMFSGD hyper-parameters.
//!
//! The paper's default configuration (§6.2.4): `r = 10`, `η = 0.1`,
//! `λ = 0.1`, logistic loss; `k = 10` neighbors for Harvard and HP-S3,
//! `k = 32` for Meridian. "Fine parameter tuning is difficult, if not
//! impossible, for network applications" — the defaults are expected to
//! work everywhere, and Figure 3/4 sweep them to show insensitivity.

use crate::error::ConfigError;
use crate::loss::Loss;
use serde::{Deserialize, Serialize};

/// What kind of values the system trains on and predicts.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub enum PredictionMode {
    /// Class-based prediction: measurements are ±1 labels, prediction
    /// is `sign(u·v)` (the paper's contribution).
    Class,
    /// Quantity-based prediction (regression with the L2 loss): the
    /// §6.4 comparator. `value_scale` divides raw measurements so SGD
    /// operates near unit magnitude (predictions are multiplied back);
    /// ranking — all peer selection needs — is scale-invariant.
    Quantity {
        /// Scale divisor applied to raw measurements (use the dataset
        /// median).
        value_scale: f64,
    },
}

/// The per-update SGD parameters shared by all four update rules.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SgdParams {
    /// Learning rate `η`.
    pub eta: f64,
    /// Regularization coefficient `λ`.
    pub lambda: f64,
    /// Loss function `l`.
    pub loss: Loss,
}

impl SgdParams {
    /// Validates parameter ranges without panicking.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if !(self.eta > 0.0 && self.eta <= 10.0) {
            return Err(ConfigError::Eta { eta: self.eta });
        }
        if !(self.lambda >= 0.0 && self.lambda < 1.0 / self.eta) {
            return Err(ConfigError::Lambda {
                lambda: self.lambda,
            });
        }
        Ok(())
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    /// Panics on the first violated range; prefer
    /// [`try_validate`](Self::try_validate).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

/// Full system configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DmfsgdConfig {
    /// Rank `r` of the factorization (coordinate length).
    pub rank: usize,
    /// SGD parameters.
    pub sgd: SgdParams,
    /// Neighbor count `k` per node.
    pub k: usize,
    /// Prediction mode.
    pub mode: PredictionMode,
    /// Seed for coordinate initialization and probe scheduling.
    pub seed: u64,
}

impl DmfsgdConfig {
    /// The paper's default configuration (class-based).
    pub fn paper_defaults() -> Self {
        Self {
            rank: 10,
            sgd: SgdParams {
                eta: 0.1,
                lambda: 0.1,
                loss: Loss::Logistic,
            },
            k: 10,
            mode: PredictionMode::Class,
            seed: 0,
        }
    }

    /// Defaults with a specific neighbor count (the paper uses `k = 32`
    /// for Meridian).
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Defaults switched to quantity (regression) mode with the given
    /// value scale.
    pub fn quantity(mut self, value_scale: f64) -> Self {
        assert!(value_scale > 0.0, "value scale must be positive");
        self.mode = PredictionMode::Quantity { value_scale };
        self.sgd.loss = Loss::L2;
        self
    }

    /// Validates the whole configuration without panicking.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.rank < 1 {
            return Err(ConfigError::ZeroRank);
        }
        if self.k < 1 {
            return Err(ConfigError::ZeroK);
        }
        self.sgd.try_validate()?;
        if let PredictionMode::Quantity { value_scale } = self.mode {
            if value_scale <= 0.0 {
                return Err(ConfigError::ValueScale { value_scale });
            }
            if self.sgd.loss != Loss::L2 {
                return Err(ConfigError::QuantityLoss {
                    loss: self.sgd.loss,
                });
            }
        }
        Ok(())
    }

    /// Validates the whole configuration.
    ///
    /// # Panics
    /// Panics on the first violated range; prefer
    /// [`try_validate`](Self::try_validate).
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_6_2_4() {
        let c = DmfsgdConfig::paper_defaults();
        assert_eq!(c.rank, 10);
        assert_eq!(c.sgd.eta, 0.1);
        assert_eq!(c.sgd.lambda, 0.1);
        assert_eq!(c.sgd.loss, Loss::Logistic);
        assert_eq!(c.mode, PredictionMode::Class);
        c.validate();
    }

    #[test]
    fn with_k_overrides() {
        let c = DmfsgdConfig::paper_defaults().with_k(32);
        assert_eq!(c.k, 32);
        c.validate();
    }

    #[test]
    fn quantity_switches_loss_to_l2() {
        let c = DmfsgdConfig::paper_defaults().quantity(56.4);
        assert_eq!(c.sgd.loss, Loss::L2);
        match c.mode {
            PredictionMode::Quantity { value_scale } => assert_eq!(value_scale, 56.4),
            other => panic!("unexpected mode {other:?}"),
        }
        c.validate();
    }

    #[test]
    #[should_panic(expected = "rank must be at least 1")]
    fn zero_rank_rejected() {
        let mut c = DmfsgdConfig::paper_defaults();
        c.rank = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "eta")]
    fn bad_eta_rejected() {
        let mut c = DmfsgdConfig::paper_defaults();
        c.sgd.eta = 0.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "shrinkage")]
    fn shrinkage_must_stay_positive() {
        SgdParams {
            eta: 1.0,
            lambda: 1.5,
            loss: Loss::Logistic,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "L2 loss")]
    fn quantity_mode_requires_l2() {
        let mut c = DmfsgdConfig::paper_defaults().quantity(1.0);
        c.sgd.loss = Loss::Logistic;
        c.validate();
    }
}
