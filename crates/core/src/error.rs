//! Typed errors for the [`crate::session`] API.
//!
//! The historical surface (`DmfsgdSystem::new` + `validate()`)
//! enforced its invariants with `assert!`, so a bad knob or a stale
//! node id aborted the process. A long-lived service cannot afford
//! that: every failure a *caller* can cause is represented here as a
//! [`DmfsgdError`] variant, and no public constructor or method of the
//! session layer panics on user input.
//!
//! The `Display` strings below preserve the historical assertion
//! messages verbatim (the long-gone `DmfsgdSystem` shim formatted
//! these errors into its panics), so error text stays stable for
//! anyone matching on it.

use crate::loss::Loss;
use dmf_datasets::Metric;
use std::fmt;

/// A node identifier handed out by [`crate::session::Session::join`]
/// (and used by every per-node query). Ids are dense slot indices:
/// stable for the lifetime of a node, reused after it leaves.
pub type NodeId = usize;

/// Everything that can go wrong when building or driving a
/// [`crate::session::Session`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum DmfsgdError {
    /// A configuration knob is out of range.
    Config(ConfigError),
    /// A membership operation or per-node query referenced a node that
    /// cannot serve it.
    Membership(MembershipError),
    /// A snapshot could not be parsed or fails its consistency checks.
    Snapshot(SnapshotError),
    /// A wire datagram could not be decoded (wrapped from
    /// [`dmf_proto`]).
    Decode(dmf_proto::DecodeError),
    /// A transport-level failure in the UDP front-end (socket errors).
    Transport(String),
    /// A bulk node import ([`crate::session::Session::import_nodes`])
    /// was rejected: id order, coordinate rank or finiteness did not
    /// match the session.
    Import(String),
    /// A batched linear-algebra query was asked of incompatible
    /// shapes (wrapped from [`dmf_linalg::ShapeError`]); the fallible
    /// query surface ([`crate::session::Session::try_predicted_scores`])
    /// returns this where the internal hot paths keep their assert.
    Shape(dmf_linalg::ShapeError),
}

impl fmt::Display for DmfsgdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmfsgdError::Config(e) => e.fmt(f),
            DmfsgdError::Membership(e) => e.fmt(f),
            DmfsgdError::Snapshot(e) => e.fmt(f),
            DmfsgdError::Decode(e) => write!(f, "datagram decode failed: {e}"),
            DmfsgdError::Transport(msg) => write!(f, "transport failure: {msg}"),
            DmfsgdError::Import(msg) => write!(f, "node import rejected: {msg}"),
            DmfsgdError::Shape(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for DmfsgdError {}

impl From<ConfigError> for DmfsgdError {
    fn from(e: ConfigError) -> Self {
        DmfsgdError::Config(e)
    }
}

impl From<MembershipError> for DmfsgdError {
    fn from(e: MembershipError) -> Self {
        DmfsgdError::Membership(e)
    }
}

impl From<SnapshotError> for DmfsgdError {
    fn from(e: SnapshotError) -> Self {
        DmfsgdError::Snapshot(e)
    }
}

impl From<dmf_proto::DecodeError> for DmfsgdError {
    fn from(e: dmf_proto::DecodeError) -> Self {
        DmfsgdError::Decode(e)
    }
}

impl From<dmf_linalg::ShapeError> for DmfsgdError {
    fn from(e: dmf_linalg::ShapeError) -> Self {
        DmfsgdError::Shape(e)
    }
}

/// An out-of-range configuration knob (rejected by
/// [`crate::session::SessionBuilder::build`] and
/// [`crate::config::DmfsgdConfig::try_validate`]).
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `rank == 0`.
    ZeroRank,
    /// `k == 0`.
    ZeroK,
    /// Learning rate outside `(0, 10]`.
    Eta {
        /// The rejected learning rate.
        eta: f64,
    },
    /// Regularization violating `0 <= lambda < 1/eta`.
    Lambda {
        /// The rejected regularization coefficient.
        lambda: f64,
    },
    /// Quantity mode with a non-positive value scale.
    ValueScale {
        /// The rejected scale divisor.
        value_scale: f64,
    },
    /// Quantity mode with a classification loss.
    QuantityLoss {
        /// The rejected loss.
        loss: Loss,
    },
    /// Population no larger than the neighbor count.
    TooFewNodes {
        /// Requested population size.
        n: usize,
        /// Neighbor count per node.
        k: usize,
    },
    /// Non-positive classification threshold τ.
    Tau {
        /// The rejected threshold.
        tau: f64,
    },
    /// A driver needs τ but neither the session nor the driver
    /// configuration carries one.
    MissingTau,
    /// Non-positive probe interval.
    ProbeInterval {
        /// The rejected interval in seconds.
        seconds: f64,
    },
    /// Non-positive run duration or round quantum.
    Duration {
        /// The rejected duration in seconds.
        seconds: f64,
    },
    /// Zero ticks per driver round.
    ZeroTicks,
    /// Message-loss probability outside `[0, 1]` (scenario impairment
    /// hooks).
    LossProbability {
        /// The rejected probability.
        probability: f64,
    },
    /// Non-positive straggler delay factor (scenario impairment
    /// hooks).
    DelayFactor {
        /// The rejected multiplier.
        factor: f64,
    },
    /// A partition island covering the whole population: the cut
    /// would be empty, so nothing would actually be partitioned.
    FullPartition {
        /// Population size (= island size).
        nodes: usize,
    },
    /// A sharded deployment asked for zero shards, or for more shards
    /// than nodes (an empty shard could never own a node).
    Shards {
        /// Population size.
        n: usize,
        /// Requested shard count.
        shards: usize,
    },
    /// A ground-truth update requires a specific metric on both the
    /// driver and the offered dataset (delay re-embedding is
    /// RTT-only); `got` is whichever side violated it.
    MetricMismatch {
        /// The metric the operation requires.
        expected: Metric,
        /// The offending metric (the driver's when it is not
        /// RTT-backed, otherwise the offered dataset's).
        got: Metric,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::ZeroRank => write!(f, "rank must be at least 1"),
            ConfigError::ZeroK => write!(f, "k must be at least 1"),
            ConfigError::Eta { eta } => write!(f, "eta {eta} out of sensible range"),
            ConfigError::Lambda { lambda } => write!(
                f,
                "lambda {lambda} must satisfy 0 <= lambda < 1/eta so the \
                 shrinkage (1-ηλ) stays positive"
            ),
            ConfigError::ValueScale { value_scale } => {
                write!(f, "value scale must be positive (got {value_scale})")
            }
            ConfigError::QuantityLoss { loss } => {
                write!(
                    f,
                    "quantity mode requires the L2 loss (paper §6.4), got {loss:?}"
                )
            }
            ConfigError::TooFewNodes { n, k } => {
                write!(f, "need more nodes than neighbors (n={n}, k={k})")
            }
            ConfigError::Tau { tau } => write!(f, "tau must be positive (got {tau})"),
            ConfigError::MissingTau => write!(
                f,
                "no classification threshold: set SessionBuilder::tau or pass one to the driver"
            ),
            ConfigError::ProbeInterval { seconds } => {
                write!(f, "probe interval must be positive (got {seconds})")
            }
            ConfigError::Duration { seconds } => {
                write!(f, "duration must be positive (got {seconds})")
            }
            ConfigError::ZeroTicks => write!(f, "ticks per round must be at least 1"),
            ConfigError::LossProbability { probability } => {
                write!(f, "loss probability {probability} out of [0, 1]")
            }
            ConfigError::DelayFactor { factor } => {
                write!(f, "delay factor must be positive (got {factor})")
            }
            ConfigError::FullPartition { nodes } => {
                write!(
                    f,
                    "partition island must be a strict subset of the population \
                     (all {nodes} nodes named)"
                )
            }
            ConfigError::Shards { n, shards } => {
                write!(f, "cannot partition {n} nodes into {shards} shards")
            }
            ConfigError::MetricMismatch { expected, got } => {
                write!(
                    f,
                    "ground-truth update requires metric {expected:?}, got {got:?}"
                )
            }
        }
    }
}

impl ConfigError {
    /// Validates a classification threshold: finite and strictly
    /// positive. The single source of truth for every surface that
    /// accepts a τ (builder, snapshot restore, simnet and UDP
    /// front-ends).
    pub fn check_tau(tau: f64) -> Result<(), ConfigError> {
        if tau.is_finite() && tau > 0.0 {
            Ok(())
        } else {
            Err(ConfigError::Tau { tau })
        }
    }
}

impl std::error::Error for ConfigError {}

/// A membership operation or query that cannot be served.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MembershipError {
    /// The id names no slot of this session.
    UnknownNode {
        /// The rejected id.
        id: NodeId,
        /// Number of slots in the session.
        slots: usize,
    },
    /// The slot exists but its node has left (duplicate `leave`, or a
    /// query against a departed node).
    Departed {
        /// The departed id.
        id: NodeId,
    },
    /// A pair operation named the same node twice.
    SelfPair {
        /// The offending id.
        id: NodeId,
    },
    /// The operation would leave fewer than `k + 1` alive nodes, so
    /// some neighbor set could no longer be filled.
    TooFewAlive {
        /// Alive nodes after the operation.
        alive: usize,
        /// Neighbor count each alive node must sustain.
        k: usize,
    },
    /// The measurement provider covers a different population than the
    /// session.
    ProviderMismatch {
        /// Nodes covered by the provider.
        provider: usize,
        /// Slots in the session.
        session: usize,
    },
    /// The trace covers a different population than the session.
    TraceMismatch {
        /// Nodes covered by the trace.
        trace: usize,
        /// Slots in the session.
        session: usize,
    },
    /// The trace is not sorted by timestamp.
    TraceNotTimeOrdered,
    /// An agent was handed an empty neighbor set — it would have
    /// nobody to probe (see `dmf-agent`'s `run_agent`).
    NoNeighbors {
        /// The agent's node id.
        id: NodeId,
    },
    /// A fleet join named an agent slot that is already running (see
    /// `dmf-agent`'s `Fleet`).
    AlreadyRunning {
        /// The agent's node id.
        id: NodeId,
    },
    /// A fleet leave named an agent slot with no running agent (see
    /// `dmf-agent`'s `Fleet`).
    NotRunning {
        /// The agent's node id.
        id: NodeId,
    },
}

impl fmt::Display for MembershipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            MembershipError::UnknownNode { id, slots } => {
                write!(f, "node id out of range: {id} (session has {slots} slots)")
            }
            MembershipError::Departed { id } => write!(f, "node {id} has left the session"),
            MembershipError::SelfPair { id } => {
                write!(f, "cannot measure the self-pair ({id}, {id})")
            }
            MembershipError::TooFewAlive { alive, k } => write!(
                f,
                "membership change refused: {alive} alive nodes cannot sustain \
                 neighbor sets of k={k}"
            ),
            MembershipError::ProviderMismatch { provider, session } => {
                write!(f, "provider covers {provider} nodes, system has {session}")
            }
            MembershipError::TraceMismatch { trace, session } => {
                write!(
                    f,
                    "trace/system size mismatch (trace {trace}, system {session})"
                )
            }
            MembershipError::TraceNotTimeOrdered => write!(f, "trace must be time-ordered"),
            MembershipError::NoNeighbors { id } => write!(f, "agent {id} has no neighbors"),
            MembershipError::AlreadyRunning { id } => {
                write!(f, "agent {id} is already running")
            }
            MembershipError::NotRunning { id } => write!(f, "agent {id} is not running"),
        }
    }
}

impl std::error::Error for MembershipError {}

/// A snapshot that cannot be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SnapshotError {
    /// The serialized form is not valid JSON (or not the expected
    /// shape).
    Parse(String),
    /// The snapshot was written by an incompatible schema version.
    SchemaVersion {
        /// Version found in the snapshot.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The snapshot parsed but its pieces contradict each other
    /// (mismatched ranks, dangling ids, impossible RNG position, …).
    Corrupt(String),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Parse(msg) => write!(f, "snapshot parse failure: {msg}"),
            SnapshotError::SchemaVersion { found, supported } => write!(
                f,
                "snapshot schema version {found} unsupported (this build reads {supported})"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_preserve_legacy_assert_substrings() {
        // The historical assertion substrings (once re-panicked by
        // the removed DmfsgdSystem shim, and still matched by
        // downstream error handling) must survive in these Display
        // impls.
        assert!(ConfigError::ZeroRank
            .to_string()
            .contains("rank must be at least 1"));
        assert!(ConfigError::Eta { eta: 0.0 }.to_string().contains("eta"));
        assert!(ConfigError::Lambda { lambda: 1.5 }
            .to_string()
            .contains("shrinkage"));
        assert!(ConfigError::QuantityLoss {
            loss: Loss::Logistic
        }
        .to_string()
        .contains("L2 loss"));
        assert!(ConfigError::TooFewNodes { n: 5, k: 10 }
            .to_string()
            .contains("more nodes than neighbors"));
        assert!(MembershipError::SelfPair { id: 3 }
            .to_string()
            .contains("self-pair"));
        assert!(MembershipError::UnknownNode { id: 9, slots: 4 }
            .to_string()
            .contains("node id out of range"));
        assert!(MembershipError::ProviderMismatch {
            provider: 3,
            session: 4
        }
        .to_string()
        .contains("provider covers 3 nodes, system has 4"));
        assert!(MembershipError::TraceMismatch {
            trace: 1,
            session: 2
        }
        .to_string()
        .contains("trace/system size mismatch"));
        assert!(MembershipError::TraceNotTimeOrdered
            .to_string()
            .contains("time-ordered"));
    }

    #[test]
    fn conversions_wrap_into_dmfsgd_error() {
        let e: DmfsgdError = ConfigError::ZeroRank.into();
        assert!(matches!(e, DmfsgdError::Config(ConfigError::ZeroRank)));
        let e: DmfsgdError = MembershipError::Departed { id: 1 }.into();
        assert!(matches!(e, DmfsgdError::Membership(_)));
        let e: DmfsgdError = SnapshotError::Parse("x".into()).into();
        assert!(matches!(e, DmfsgdError::Snapshot(_)));
        let e: DmfsgdError = dmf_proto::DecodeError::BadMagic.into();
        assert!(matches!(
            e,
            DmfsgdError::Decode(dmf_proto::DecodeError::BadMagic)
        ));
    }

    #[test]
    fn errors_format_and_chain() {
        let e = DmfsgdError::Snapshot(SnapshotError::SchemaVersion {
            found: 9,
            supported: 1,
        });
        assert!(e.to_string().contains("schema version 9"));
        let e = DmfsgdError::Decode(dmf_proto::DecodeError::BadChecksum);
        assert!(e.to_string().contains("checksum"));
        let e = DmfsgdError::Transport("socket closed".into());
        assert!(e.to_string().contains("socket closed"));
    }
}
