//! Multiclass (ordinal) performance classes — the paper's §7 future
//! work, implemented.
//!
//! "While we focus here on binary classification, our framework could
//! be extended to the prediction of more than two performance classes,
//! i.e., multiclass classification, which we would like to study in
//! the near future."
//!
//! Network performance classes are *ordered* (e.g. bad < fair < good <
//! excellent), so the natural extension is **ordinal** classification
//! with the immediate-threshold construction used by rating-based
//! matrix factorization (cf. MMMF): the real-valued score `x̂ = u · v`
//! is compared against `C − 1` fixed ordered thresholds
//! `θ_1 < … < θ_{C−1}`; class `c` means `θ_{c−1} < x̂ ≤ θ_c`. Training
//! a measurement of class `c` sums one binary loss per threshold:
//!
//! ```text
//! L(c, x̂) = Σ_{k=1}^{C−1} l(s_k, x̂ − θ_k),   s_k = +1 if c > k else −1
//! ```
//!
//! With `C = 2` and `θ_1 = 0` this degenerates exactly to the paper's
//! binary formulation, which is asserted by tests. The SGD step keeps
//! the same shape as eqs. 9–13 — the gradient factor is just a sum
//! over thresholds — so the decentralized protocol is unchanged: only
//! the one-byte class label on the wire gets richer.

use crate::config::SgdParams;
use crate::coords::dot;
use crate::loss::Loss;
use crate::node::DmfsgdNode;
use crate::provider::MeasurementProvider;
use dmf_datasets::{Dataset, Metric};
use dmf_linalg::Matrix;
use dmf_simnet::NeighborSets;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// An ordinal classifier over `C` classes with `C − 1` thresholds.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OrdinalClassifier {
    /// Ascending score thresholds `θ_1 < … < θ_{C−1}`.
    pub thresholds: Vec<f64>,
    /// The per-threshold binary loss (hinge or logistic).
    pub loss: Loss,
}

impl OrdinalClassifier {
    /// `C` classes with symmetric, unit-spaced thresholds centered at
    /// zero (for `C = 2`: `θ = [0]`, the binary sign rule).
    pub fn equally_spaced(classes: usize, loss: Loss) -> Self {
        assert!(classes >= 2, "need at least two classes");
        assert!(
            loss.is_classification(),
            "ordinal training needs a classification loss"
        );
        let c = classes as f64;
        let thresholds = (1..classes).map(|k| k as f64 - c / 2.0).collect();
        Self { thresholds, loss }
    }

    /// Number of classes `C`.
    pub fn class_count(&self) -> usize {
        self.thresholds.len() + 1
    }

    /// Predicted class (1-based, ascending quality) from a score.
    pub fn predict_class(&self, score: f64) -> usize {
        1 + self.thresholds.iter().filter(|&&t| score > t).count()
    }

    /// The ordinal loss `L(c, x̂)`.
    pub fn loss_value(&self, class: usize, score: f64) -> f64 {
        self.check_class(class);
        self.thresholds
            .iter()
            .enumerate()
            .map(|(idx, &theta)| {
                let s = if class > idx + 1 { 1.0 } else { -1.0 };
                self.loss.value(s, score - theta)
            })
            .sum()
    }

    /// Gradient of the ordinal loss w.r.t. the score.
    pub fn gradient_factor(&self, class: usize, score: f64) -> f64 {
        self.check_class(class);
        self.thresholds
            .iter()
            .enumerate()
            .map(|(idx, &theta)| {
                let s = if class > idx + 1 { 1.0 } else { -1.0 };
                self.loss.gradient_factor(s, score - theta)
            })
            .sum()
    }

    fn check_class(&self, class: usize) {
        assert!(
            (1..=self.class_count()).contains(&class),
            "class {class} outside 1..={}",
            self.class_count()
        );
    }
}

/// One ordinal SGD step: like [`crate::update::sgd_step`] but with the
/// multi-threshold gradient factor.
pub fn ordinal_sgd_step(
    updated: &mut [f64],
    fixed: &[f64],
    class: usize,
    clf: &OrdinalClassifier,
    params: &SgdParams,
) {
    assert_eq!(updated.len(), fixed.len(), "coordinate rank mismatch");
    let score = dot(updated, fixed);
    let g = clf.gradient_factor(class, score);
    let shrink = 1.0 - params.eta * params.lambda;
    for (t, &f) in updated.iter_mut().zip(fixed.iter()) {
        *t = shrink * *t - params.eta * g * f;
    }
}

/// Multiclass labels derived from a quantity dataset by quantile
/// boundaries (class 1 = worst performance, `C` = best).
#[derive(Clone, Debug)]
pub struct MulticlassLabels {
    /// Quantity boundaries between classes (ascending in *quality*).
    pub boundaries: Vec<f64>,
    /// Metric orientation.
    pub metric: Metric,
    labels: Vec<u8>,
    n: usize,
}

impl MulticlassLabels {
    /// Splits the observed value distribution into `classes`
    /// equal-mass classes.
    pub fn quantiles(dataset: &Dataset, classes: usize) -> Self {
        assert!((2..=250).contains(&classes), "class count out of range");
        let observed = dataset.observed_values();
        // Quality-ascending boundaries: for RTT high values are *worse*,
        // so boundaries run from high to low quantiles.
        let boundaries: Vec<f64> = (1..classes)
            .map(|k| {
                let portion = k as f64 / classes as f64;
                // Portion of paths at least this good.
                let p = dataset.metric.percentile_for_good_portion(1.0 - portion);
                dmf_linalg::stats::percentile(&observed, p)
            })
            .collect();
        let n = dataset.len();
        let mut labels = vec![0u8; n * n];
        for (i, j) in dataset.mask.iter_known() {
            let v = dataset.values[(i, j)];
            let class = 1 + boundaries
                .iter()
                .filter(|&&b| match dataset.metric {
                    Metric::Rtt => v <= b, // faster than boundary ⇒ better
                    Metric::Abw => v >= b, // more bandwidth ⇒ better
                })
                .count();
            labels[i * n + j] = class as u8;
        }
        Self {
            boundaries,
            metric: dataset.metric,
            labels,
            n,
        }
    }

    /// The class of a pair, if observed (1-based; 0 = unobserved).
    pub fn label(&self, i: usize, j: usize) -> Option<usize> {
        let raw = self.labels[i * self.n + j];
        if raw == 0 {
            None
        } else {
            Some(raw as usize)
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterates observed `(i, j, class)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        (0..self.n)
            .flat_map(move |i| (0..self.n).filter_map(move |j| self.label(i, j).map(|c| (i, j, c))))
    }
}

/// A DMFSGD population trained on ordinal classes.
///
/// Reuses [`DmfsgdNode`] coordinates; the only change versus the
/// binary system is the per-measurement gradient.
pub struct MulticlassSystem {
    clf: OrdinalClassifier,
    params: SgdParams,
    nodes: Vec<DmfsgdNode>,
    neighbors: NeighborSets,
    rng: ChaCha8Rng,
    measurements: usize,
    symmetric: bool,
}

impl MulticlassSystem {
    /// Creates a system of `n` nodes for the given classifier.
    pub fn new(
        n: usize,
        rank: usize,
        k: usize,
        clf: OrdinalClassifier,
        params: SgdParams,
        metric: Metric,
        seed: u64,
    ) -> Self {
        params.validate();
        assert!(n > k, "need more nodes than neighbors");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let nodes = (0..n).map(|i| DmfsgdNode::new(i, rank, &mut rng)).collect();
        let neighbors = NeighborSets::random(n, k, &mut rng);
        Self {
            clf,
            params,
            nodes,
            neighbors,
            rng,
            measurements: 0,
            symmetric: metric.is_symmetric(),
        }
    }

    /// The classifier in force.
    pub fn classifier(&self) -> &OrdinalClassifier {
        &self.clf
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Measurements processed.
    pub fn measurements_used(&self) -> usize {
        self.measurements
    }

    /// Raw score `u_i · v_j`.
    pub fn raw_score(&self, i: usize, j: usize) -> f64 {
        self.nodes[i].predict_to(&self.nodes[j])
    }

    /// Predicted class for a pair.
    pub fn predict_class(&self, i: usize, j: usize) -> usize {
        self.clf.predict_class(self.raw_score(i, j))
    }

    /// All raw scores (diagonal zeroed).
    pub fn predicted_scores(&self) -> Matrix {
        let n = self.len();
        Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { self.raw_score(i, j) })
    }

    /// Applies one class-`c` measurement for `(i, j)`, mirroring the
    /// Algorithm 1/2 structure.
    pub fn apply_measurement(&mut self, i: usize, j: usize, class: usize) {
        if self.symmetric {
            // Algorithm-1 shape: update u_i against v_j and v_i against
            // u_j (the symmetric label constrains both directions).
            let u_j = self.nodes[j].coords.u.clone();
            let v_j = self.nodes[j].coords.v.clone();
            ordinal_sgd_step(
                &mut self.nodes[i].coords.u,
                &v_j,
                class,
                &self.clf,
                &self.params,
            );
            ordinal_sgd_step(
                &mut self.nodes[i].coords.v,
                &u_j,
                class,
                &self.clf,
                &self.params,
            );
        } else {
            // Algorithm-2 shape: v_j updates at the target with the
            // pre-update snapshot sent back for u_i.
            let u_i = self.nodes[i].coords.u.clone();
            let v_snapshot = self.nodes[j].coords.v.clone();
            ordinal_sgd_step(
                &mut self.nodes[j].coords.v,
                &u_i,
                class,
                &self.clf,
                &self.params,
            );
            ordinal_sgd_step(
                &mut self.nodes[i].coords.u,
                &v_snapshot,
                class,
                &self.clf,
                &self.params,
            );
        }
        self.measurements += 1;
    }

    /// One random probe tick against a label source.
    pub fn tick(&mut self, labels: &MulticlassLabels) -> bool {
        let i = self.rng.gen_range(0..self.len());
        let j = self.neighbors.sample_neighbor(i, &mut self.rng);
        match labels.label(i, j) {
            Some(c) => {
                self.apply_measurement(i, j, c);
                true
            }
            None => false,
        }
    }

    /// Runs `count` ticks.
    pub fn run(&mut self, count: usize, labels: &MulticlassLabels) {
        assert_eq!(labels.len(), self.len(), "label/system size mismatch");
        for _ in 0..count {
            self.tick(labels);
        }
    }

    /// Evaluation: (exact accuracy, within-one-class accuracy, mean
    /// absolute class error) over observed pairs.
    pub fn evaluate(&self, labels: &MulticlassLabels) -> (f64, f64, f64) {
        let mut exact = 0usize;
        let mut within_one = 0usize;
        let mut abs_err = 0usize;
        let mut total = 0usize;
        for (i, j, truth) in labels.iter() {
            let predicted = self.predict_class(i, j);
            let err = truth.abs_diff(predicted);
            total += 1;
            if err == 0 {
                exact += 1;
            }
            if err <= 1 {
                within_one += 1;
            }
            abs_err += err;
        }
        assert!(total > 0, "no observed labels to evaluate");
        (
            exact as f64 / total as f64,
            within_one as f64 / total as f64,
            abs_err as f64 / total as f64,
        )
    }
}

/// Adapter: binary view of a multiclass system for AUC comparisons —
/// classes above `good_above` count as "good".
pub struct BinarizedProvider<'a> {
    labels: &'a MulticlassLabels,
    good_above: usize,
}

impl<'a> BinarizedProvider<'a> {
    /// Wraps multiclass labels; classes `> good_above` map to +1.
    pub fn new(labels: &'a MulticlassLabels, good_above: usize) -> Self {
        Self { labels, good_above }
    }
}

impl MeasurementProvider for BinarizedProvider<'_> {
    fn measure(&mut self, i: usize, j: usize, _rng: &mut dyn rand::RngCore) -> Option<f64> {
        self.labels
            .label(i, j)
            .map(|c| if c > self.good_above { 1.0 } else { -1.0 })
    }

    fn metric(&self) -> Metric {
        self.labels.metric
    }

    fn len(&self) -> usize {
        self.labels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;

    fn params() -> SgdParams {
        SgdParams {
            eta: 0.1,
            lambda: 0.1,
            loss: Loss::Logistic,
        }
    }

    #[test]
    fn binary_case_matches_sign_rule() {
        let clf = OrdinalClassifier::equally_spaced(2, Loss::Logistic);
        assert_eq!(clf.thresholds, vec![0.0]);
        assert_eq!(clf.predict_class(0.5), 2);
        assert_eq!(clf.predict_class(-0.5), 1);
        // Loss and gradient equal the binary logistic at θ = 0.
        for score in [-2.0, -0.3, 0.0, 0.7, 3.0] {
            assert!((clf.loss_value(2, score) - Loss::Logistic.value(1.0, score)).abs() < 1e-12);
            assert!((clf.loss_value(1, score) - Loss::Logistic.value(-1.0, score)).abs() < 1e-12);
            assert!(
                (clf.gradient_factor(2, score) - Loss::Logistic.gradient_factor(1.0, score)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn predict_class_partitions_score_axis() {
        let clf = OrdinalClassifier::equally_spaced(4, Loss::Logistic);
        assert_eq!(clf.class_count(), 4);
        // Thresholds at -1, 0, 1.
        assert_eq!(clf.predict_class(-5.0), 1);
        assert_eq!(clf.predict_class(-0.5), 2);
        assert_eq!(clf.predict_class(0.5), 3);
        assert_eq!(clf.predict_class(5.0), 4);
    }

    #[test]
    fn ordinal_gradient_matches_finite_difference() {
        let clf = OrdinalClassifier::equally_spaced(5, Loss::Logistic);
        let h = 1e-7;
        for class in 1..=5 {
            for score in [-2.5, -0.7, 0.0, 1.3, 2.9] {
                let numeric = (clf.loss_value(class, score + h) - clf.loss_value(class, score - h))
                    / (2.0 * h);
                let analytic = clf.gradient_factor(class, score);
                assert!(
                    (numeric - analytic).abs() < 1e-5,
                    "class {class}, score {score}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn ordinal_loss_minimized_in_own_bin() {
        let clf = OrdinalClassifier::equally_spaced(4, Loss::Logistic);
        // A score in the middle of class 3's bin (between 0 and 1).
        let score = 0.5;
        let own = clf.loss_value(3, score);
        for other in [1, 2, 4] {
            assert!(
                clf.loss_value(other, score) > own,
                "class {other} loss should exceed class 3 at its own bin"
            );
        }
    }

    #[test]
    fn quantile_labels_balanced() {
        let d = meridian_like(80, 1);
        let labels = MulticlassLabels::quantiles(&d, 4);
        let mut counts = [0usize; 5];
        for (_, _, c) in labels.iter() {
            counts[c] += 1;
        }
        let total: usize = counts.iter().sum();
        for (c, &count) in counts.iter().enumerate().skip(1) {
            let frac = count as f64 / total as f64;
            assert!(
                (frac - 0.25).abs() < 0.05,
                "class {c} has fraction {frac}, expected ~0.25"
            );
        }
        assert_eq!(labels.label(0, 0), None);
    }

    #[test]
    fn quantile_labels_quality_ascending_for_rtt() {
        // Class C must hold the *fastest* paths for RTT.
        let d = meridian_like(60, 2);
        let labels = MulticlassLabels::quantiles(&d, 3);
        let mut best_values = Vec::new();
        let mut worst_values = Vec::new();
        for (i, j, c) in labels.iter() {
            if c == 3 {
                best_values.push(d.values[(i, j)]);
            } else if c == 1 {
                worst_values.push(d.values[(i, j)]);
            }
        }
        let best_mean = dmf_linalg::stats::mean(&best_values);
        let worst_mean = dmf_linalg::stats::mean(&worst_values);
        assert!(
            best_mean < worst_mean,
            "class 3 (best) mean RTT {best_mean} must beat class 1 {worst_mean}"
        );
    }

    #[test]
    fn multiclass_training_beats_chance_rtt() {
        let d = meridian_like(60, 3);
        let labels = MulticlassLabels::quantiles(&d, 3);
        let clf = OrdinalClassifier::equally_spaced(3, Loss::Logistic);
        let mut sys = MulticlassSystem::new(60, 10, 10, clf, params(), Metric::Rtt, 3);
        sys.run(60 * 10 * 40, &labels);
        let (exact, within_one, mae) = sys.evaluate(&labels);
        // Chance: 1/3 exact, ~7/9 within-one.
        assert!(exact > 0.5, "exact accuracy {exact}");
        assert!(within_one > 0.9, "within-one accuracy {within_one}");
        assert!(mae < 0.6, "mean absolute class error {mae}");
    }

    #[test]
    fn multiclass_training_beats_chance_abw() {
        let d = hps3_like(60, 4);
        let labels = MulticlassLabels::quantiles(&d, 4);
        let clf = OrdinalClassifier::equally_spaced(4, Loss::Logistic);
        let mut sys = MulticlassSystem::new(60, 10, 10, clf, params(), Metric::Abw, 4);
        sys.run(60 * 10 * 40, &labels);
        let (exact, within_one, _) = sys.evaluate(&labels);
        assert!(exact > 0.4, "exact accuracy {exact} (chance = 0.25)");
        assert!(within_one > 0.8, "within-one accuracy {within_one}");
    }

    #[test]
    fn binarized_provider_reduces_to_binary_problem() {
        let d = meridian_like(50, 5);
        let labels = MulticlassLabels::quantiles(&d, 4);
        let mut provider = BinarizedProvider::new(&labels, 2);
        let mut system = crate::Session::builder().nodes(50).build().expect("valid");
        system.run(50 * 10 * 25, &mut provider).expect("run");
        // Evaluate against the top-half classes as "good".
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, j, c) in labels.iter() {
            let truth_good = c > 2;
            let predicted_good = system.raw_score(i, j).expect("alive pair") > 0.0;
            total += 1;
            if truth_good == predicted_good {
                ok += 1;
            }
        }
        let acc = ok as f64 / total as f64;
        assert!(acc > 0.75, "binarized accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "class 7 outside")]
    fn class_bounds_checked() {
        let clf = OrdinalClassifier::equally_spaced(3, Loss::Logistic);
        clf.loss_value(7, 0.0);
    }
}
