//! Fused-RTT execution over a sharded network — the 10k–100k-node
//! front-end.
//!
//! [`ShardedSimnetDriver`] drives the same fused RTT protocol as
//! [`SimnetDriver`](crate::runner::SimnetDriver) — literally the same
//! code, via the crate-internal transport trait the fused handlers are
//! generic over — but through a [`ShardedSimNet`], whose per-island
//! delay tables keep memory linear in the population instead of
//! quadratic. Two deliberate scope cuts against the full driver:
//!
//! * **RTT, fused fidelity only.** The per-message and ABW paths need
//!   a ground-truth [`Dataset`](dmf_datasets::Dataset) at the target
//!   (and the ABW prober measures against it), which is itself an
//!   `n × n` object — the very thing sharding removes. The fused RTT
//!   path measures the *simulated network itself*, so no dataset ever
//!   materializes.
//! * **No impairment hooks.** Scale workloads are partition-free;
//!   [`ShardedSimNet`] does not expose partitions or stragglers.
//!
//! Determinism carries over unchanged: the sharded merge is
//! event-order-identical to a single queue (pinned by
//! `dmf-simnet/tests/shard_merge.rs`), the protocol draws from the
//! session RNG in delivery order, and the SGD arithmetic is
//! bitwise-pinned across SIMD dispatch paths.

use crate::error::{ConfigError, DmfsgdError, MembershipError};
use crate::runner::{fused_fire_probe, fused_on_exchange, fused_rearm_timer, Msg, RunnerStats};
use crate::session::{Driver, Session};
use dmf_simnet::ShardedSimNet;
use rand::Rng;

/// The sharded-network front-end of the [`Driver`] trait: owns a
/// [`ShardedSimNet`] transport while the [`Session`] owns the learning
/// state. Advance it with [`run_until`](Self::run_until) or through
/// [`Driver::round`].
pub struct ShardedSimnetDriver {
    net: ShardedSimNet<Msg>,
    tau: f64,
    probe_interval_s: f64,
    timers_seeded: bool,
    quantum_s: f64,
    stats: RunnerStats,
}

impl ShardedSimnetDriver {
    /// Builds the driver over a pre-built sharded transport (construct
    /// one with [`ShardedSimNet::from_delay_fn`] — typically from a
    /// synthetic delay model, since at this scale no dense ground
    /// truth exists). The classification threshold comes from the
    /// session ([`SessionBuilder::tau`]).
    ///
    /// [`SessionBuilder::tau`]: crate::session::SessionBuilder::tau
    pub fn new(session: &Session, net: ShardedSimNet<Msg>) -> Result<Self, DmfsgdError> {
        let tau = session.tau().ok_or(ConfigError::MissingTau)?;
        Self::with_tau(session, net, tau)
    }

    /// [`new`](Self::new) with an explicit threshold, overriding the
    /// session's τ.
    pub fn with_tau(
        session: &Session,
        net: ShardedSimNet<Msg>,
        tau: f64,
    ) -> Result<Self, DmfsgdError> {
        ConfigError::check_tau(tau)?;
        if net.len() != session.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: net.len(),
                session: session.len(),
            }
            .into());
        }
        Ok(Self {
            net,
            tau,
            probe_interval_s: 1.0,
            timers_seeded: false,
            quantum_s: 10.0,
            stats: RunnerStats::default(),
        })
    }

    /// Sets the probe timer period (default 1 s).
    pub fn with_probe_interval(mut self, seconds: f64) -> Result<Self, DmfsgdError> {
        let valid = seconds.is_finite() && seconds > 0.0;
        if !valid {
            return Err(ConfigError::ProbeInterval { seconds }.into());
        }
        self.probe_interval_s = seconds;
        Ok(self)
    }

    /// Sets the simulated seconds one [`Driver::round`] advances
    /// (default 10 s).
    pub fn with_quantum(mut self, seconds: f64) -> Result<Self, DmfsgdError> {
        let valid = seconds.is_finite() && seconds > 0.0;
        if !valid {
            return Err(ConfigError::Duration { seconds }.into());
        }
        self.quantum_s = seconds;
        Ok(self)
    }

    /// Run statistics.
    pub fn stats(&self) -> RunnerStats {
        self.stats
    }

    /// Current simulated time (the timestamp of the last delivered
    /// event; 0 before the first).
    pub fn now(&self) -> f64 {
        self.net.now()
    }

    /// The underlying transport (island layout, network stats, delay
    /// table memory accounting).
    pub fn net(&self) -> &ShardedSimNet<Msg> {
        &self.net
    }

    /// Runs the protocol until simulated time `deadline_s`, starting
    /// all probe timers at jittered offsets on the first call. Returns
    /// the measurements completed during this call. Events scheduled
    /// past `deadline_s` stay queued, exactly as in
    /// [`SimnetDriver::run_until`](crate::runner::SimnetDriver::run_until).
    pub fn run_until(
        &mut self,
        session: &mut Session,
        deadline_s: f64,
    ) -> Result<usize, DmfsgdError> {
        if session.len() != self.net.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: self.net.len(),
                session: session.len(),
            }
            .into());
        }
        let before = self.stats.measurements_completed;
        if !self.timers_seeded {
            self.timers_seeded = true;
            let n = self.net.len();
            for i in 0..n {
                let offset = session.rng.gen::<f64>() * self.probe_interval_s;
                self.net.set_timer(i, offset, Msg::ProbeTick);
            }
        }
        while let Some((now, delivery)) = self.net.next_delivery_before(deadline_s) {
            match delivery.msg {
                Msg::ProbeTick => {
                    let i = delivery.to;
                    if !session.is_alive(i) {
                        fused_rearm_timer(&mut self.net, session, self.probe_interval_s, i);
                        continue;
                    }
                    fused_fire_probe(
                        &mut self.net,
                        session,
                        &mut self.stats,
                        self.probe_interval_s,
                        i,
                        now,
                    );
                }
                Msg::RttExchange { sent_at } => {
                    fused_on_exchange(
                        &mut self.net,
                        session,
                        &mut self.stats,
                        self.probe_interval_s,
                        self.tau,
                        now,
                        delivery.to,
                        delivery.from,
                        sent_at,
                    );
                }
                // This driver only ever schedules ticks and fused
                // exchanges; nothing else can come back out.
                other => unreachable!("sharded driver delivered {other:?}"),
            }
        }
        Ok(self.stats.measurements_completed - before)
    }
}

impl std::fmt::Debug for ShardedSimnetDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedSimnetDriver")
            .field("nodes", &self.net.len())
            .field("islands", &self.net.islands())
            .field("tau", &self.tau)
            .field("probe_interval_s", &self.probe_interval_s)
            .field("quantum_s", &self.quantum_s)
            .field("now", &self.net.now())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl Driver for ShardedSimnetDriver {
    /// One round = one quantum of simulated time (see
    /// [`with_quantum`](Self::with_quantum)).
    fn round(&mut self, session: &mut Session) -> Result<usize, DmfsgdError> {
        let deadline = self.net.now() + self.quantum_s;
        self.run_until(session, deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DmfsgdConfig;
    use crate::runner::SimnetDriver;
    use crate::session::SessionBuilder;
    use dmf_datasets::rtt::meridian_like;
    use dmf_simnet::NetConfig;

    fn session(n: usize, seed: u64) -> Session {
        let config = DmfsgdConfig {
            seed,
            ..DmfsgdConfig::paper_defaults()
        };
        SessionBuilder::from_config(config)
            .nodes(n)
            .tau(60.0)
            .build()
            .unwrap()
    }

    fn quiet(seed: u64) -> NetConfig {
        NetConfig {
            delay_jitter_sigma: 0.0,
            seed,
            ..NetConfig::default()
        }
    }

    #[test]
    fn sharded_driver_trains_and_reports_stats() {
        let mut s = session(32, 9);
        let net = ShardedSimNet::from_delay_fn(32, 4, quiet(1), |i, j| {
            0.02 + 0.001 * ((i * 7 + j * 3) % 40) as f64
        });
        let mut driver = ShardedSimnetDriver::new(&s, net).unwrap();
        let applied = driver.run_until(&mut s, 30.0).unwrap();
        assert!(applied > 200, "fused probes every second: {applied}");
        assert_eq!(driver.stats().measurements_completed, applied);
        assert!(driver.stats().probes_sent >= applied);
        assert!(driver.now() <= 30.0);
        assert_eq!(s.measurements_used(), applied);
    }

    /// A 1-island sharded transport replays the single-net driver
    /// bit-for-bit (same delays, no jitter/loss → no RNG divergence;
    /// session RNG draws happen in identical delivery order). This is
    /// the end-to-end leg of the merge-equivalence story: not just the
    /// event order, but the learned coordinates match.
    #[test]
    fn one_island_matches_single_net_driver_bitwise() {
        let d = meridian_like(24, 5);
        let mut s_single = session(24, 4);
        let mut s_sharded = session(24, 4);

        let mut single = SimnetDriver::new(&s_single, d.clone(), quiet(2)).unwrap();
        // Mirror `SimNet::from_rtt_dataset` exactly: known pairs take
        // RTT/2, unknown pairs (incl. the diagonal) the default delay.
        let default = quiet(2).default_one_way_delay_s;
        let delay = |i: usize, j: usize| {
            if d.mask.is_known(i, j) {
                d.values[(i, j)] / 2.0 / 1000.0
            } else {
                default
            }
        };
        let net = ShardedSimNet::from_delay_fn(24, 1, quiet(2), delay);
        let mut sharded = ShardedSimnetDriver::new(&s_sharded, net).unwrap();

        single.run_until(&mut s_single, 20.0).unwrap();
        sharded.run_until(&mut s_sharded, 20.0).unwrap();

        assert_eq!(
            s_single.measurements_used(),
            s_sharded.measurements_used(),
            "same measurement count"
        );
        let a = s_single.predicted_scores();
        let b = s_sharded.predicted_scores();
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits(), "coordinates diverged");
        }
    }

    #[test]
    fn driver_round_advances_one_quantum() {
        let mut s = session(16, 1);
        let net = ShardedSimNet::uniform(16, 4, 0.02, quiet(0));
        let mut driver = ShardedSimnetDriver::new(&s, net)
            .unwrap()
            .with_quantum(5.0)
            .unwrap();
        let first = driver.round(&mut s).unwrap();
        assert!(first > 0);
        assert!(driver.now() <= 5.0);
        driver.round(&mut s).unwrap();
        assert!(driver.now() > 5.0 && driver.now() <= 10.0);
    }

    #[test]
    fn population_mismatch_is_typed() {
        let s = session(16, 0);
        let net = ShardedSimNet::uniform(17, 3, 0.02, quiet(0));
        let err = ShardedSimnetDriver::new(&s, net).unwrap_err();
        assert!(matches!(
            err,
            DmfsgdError::Membership(MembershipError::ProviderMismatch { .. })
        ));
    }

    #[test]
    fn memory_accounting_is_linear_in_population() {
        let net_small: ShardedSimNet<Msg> = ShardedSimNet::uniform(1000, 10, 0.02, quiet(0));
        let net_big: ShardedSimNet<Msg> = ShardedSimNet::uniform(2000, 20, 0.02, quiet(0));
        // Same island size → same per-node table cost.
        assert_eq!(net_big.table_bytes(), 2 * net_small.table_bytes());
    }
}
