//! Measurement providers: where training values come from.
//!
//! The session ([`crate::session`]) is agnostic to how a
//! measurement is produced. Three sources cover the paper's
//! experiments:
//!
//! * [`ClassLabelProvider`] — labels read from a (possibly
//!   error-injected) [`ClassMatrix`]; this is the paper's main
//!   evaluation path, where the measurement module is assumed to have
//!   produced the class matrix up front.
//! * [`QuantityProvider`] — raw quantities scaled to unit magnitude;
//!   used by quantity-based (regression) prediction in §6.4.
//! * [`ProbedClassProvider`] — classes measured *on the fly* by the
//!   simulated tools of `dmf-simnet` (ping+threshold for RTT,
//!   pathload-style train for ABW), exercising the cheap direct class
//!   measurement the paper advocates in §3.2.

use dmf_datasets::{ClassMatrix, Dataset, Metric};
use dmf_simnet::probe::{PathloadProber, RttProber};
use rand::RngCore;

/// A source of training values `x` for node pairs.
pub trait MeasurementProvider {
    /// The value `x_ij` fed to SGD for pair `(i, j)`; `None` when the
    /// pair cannot be measured (missing ground truth).
    fn measure(&mut self, i: usize, j: usize, rng: &mut dyn RngCore) -> Option<f64>;

    /// The metric being measured (decides Algorithm 1 vs Algorithm 2).
    fn metric(&self) -> Metric;

    /// Number of nodes covered.
    fn len(&self) -> usize;

    /// True when the provider covers no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Labels straight from a class matrix.
pub struct ClassLabelProvider {
    class: ClassMatrix,
}

impl ClassLabelProvider {
    /// Wraps a class matrix (use `dmf_simnet::errors::inject` first to
    /// model erroneous measurements).
    pub fn new(class: ClassMatrix) -> Self {
        Self { class }
    }

    /// Access to the wrapped matrix.
    pub fn class_matrix(&self) -> &ClassMatrix {
        &self.class
    }
}

impl MeasurementProvider for ClassLabelProvider {
    fn measure(&mut self, i: usize, j: usize, _rng: &mut dyn RngCore) -> Option<f64> {
        self.class.label(i, j)
    }

    fn metric(&self) -> Metric {
        self.class.metric
    }

    fn len(&self) -> usize {
        self.class.len()
    }
}

/// Raw quantities divided by a fixed scale.
pub struct QuantityProvider {
    dataset: Dataset,
    scale: f64,
}

impl QuantityProvider {
    /// Wraps a dataset; `scale` should be of the order of the dataset
    /// median so SGD sees values near 1.
    pub fn new(dataset: Dataset, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        Self { dataset, scale }
    }

    /// The scale divisor.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl MeasurementProvider for QuantityProvider {
    fn measure(&mut self, i: usize, j: usize, _rng: &mut dyn RngCore) -> Option<f64> {
        self.dataset.value(i, j).map(|v| v / self.scale)
    }

    fn metric(&self) -> Metric {
        self.dataset.metric
    }

    fn len(&self) -> usize {
        self.dataset.len()
    }
}

/// Classes measured on the fly by simulated probing tools.
pub struct ProbedClassProvider {
    dataset: Dataset,
    tau: f64,
    rtt_prober: RttProber,
    abw_prober: PathloadProber,
}

impl ProbedClassProvider {
    /// Probes `dataset` at threshold/rate `tau` with default tool
    /// noise profiles.
    pub fn new(dataset: Dataset, tau: f64) -> Self {
        assert!(tau > 0.0, "tau must be positive");
        Self {
            dataset,
            tau,
            rtt_prober: RttProber::default(),
            abw_prober: PathloadProber::default(),
        }
    }

    /// Overrides the tool noise models.
    pub fn with_probers(mut self, rtt: RttProber, abw: PathloadProber) -> Self {
        self.rtt_prober = rtt;
        self.abw_prober = abw;
        self
    }
}

impl MeasurementProvider for ProbedClassProvider {
    fn measure(&mut self, i: usize, j: usize, rng: &mut dyn RngCore) -> Option<f64> {
        match self.dataset.metric {
            Metric::Rtt => {
                let rtt = self.rtt_prober.measure(&self.dataset, i, j, rng)?;
                Some(Metric::Rtt.classify(rtt, self.tau))
            }
            Metric::Abw => self
                .abw_prober
                .probe_class(&self.dataset, i, j, self.tau, rng),
        }
    }

    fn metric(&self) -> Metric {
        self.dataset.metric
    }

    fn len(&self) -> usize {
        self.dataset.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::abw::hps3_like;
    use dmf_datasets::rtt::meridian_like;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn class_provider_returns_labels() {
        let d = meridian_like(20, 1);
        let tau = d.median();
        let cm = d.classify(tau);
        let mut p = ClassLabelProvider::new(cm.clone());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for (i, j) in cm.mask.iter_known().take(50) {
            assert_eq!(p.measure(i, j, &mut rng), cm.label(i, j));
        }
        assert_eq!(p.measure(0, 0, &mut rng), None);
        assert_eq!(p.metric(), Metric::Rtt);
        assert_eq!(p.len(), 20);
    }

    #[test]
    fn quantity_provider_scales() {
        let d = meridian_like(10, 2);
        let median = d.median();
        let v01 = d.values[(0, 1)];
        let mut p = QuantityProvider::new(d, median);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let x = p.measure(0, 1, &mut rng).unwrap();
        assert!((x - v01 / median).abs() < 1e-12);
    }

    #[test]
    fn probed_rtt_classes_mostly_match_truth() {
        let d = meridian_like(40, 3);
        let tau = d.median();
        let truth = d.classify(tau);
        let mut p = ProbedClassProvider::new(d, tau);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut agree = 0;
        let mut total = 0;
        for (i, j) in truth.mask.iter_known() {
            let x = p.measure(i, j, &mut rng).unwrap();
            assert!(x == 1.0 || x == -1.0);
            total += 1;
            if Some(x) == truth.label(i, j) {
                agree += 1;
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.9, "probe agreement {rate} too low");
        assert!(rate < 1.0, "probing should not be perfectly noise-free");
    }

    #[test]
    fn probed_abw_classes_sane() {
        let d = hps3_like(40, 4);
        let tau = d.median();
        let truth = d.classify(tau);
        let mut p = ProbedClassProvider::new(d, tau);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut agree = 0;
        let mut total = 0;
        for (i, j) in truth.mask.iter_known() {
            let Some(x) = p.measure(i, j, &mut rng) else {
                continue;
            };
            total += 1;
            if Some(x) == truth.label(i, j) {
                agree += 1;
            }
        }
        assert!(agree as f64 / total as f64 > 0.85);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn quantity_scale_validated() {
        QuantityProvider::new(meridian_like(5, 5), 0.0);
    }
}
