//! # dmf-core — DMFSGD
//!
//! The primary contribution of *"Decentralized Prediction of End-to-End
//! Network Performance Classes"* (Liao, Du, Geurts, Leduc — CoNEXT
//! 2011): **D**ecentralized **M**atrix **F**actorization by
//! **S**tochastic **G**radient **D**escent.
//!
//! Every node `i` keeps two rank-`r` coordinate vectors `u_i` and
//! `v_i`; the predicted performance measure from `i` to `j` is
//! `x̂_ij = u_i · v_j`, and for class-based prediction its sign is the
//! predicted class. Nodes probe only `k` random neighbors; each
//! measurement triggers a constant-time local SGD step — no central
//! server, no landmarks, no materialized matrix.
//!
//! Crate layout:
//!
//! * [`loss`] — the L2 / hinge / logistic loss functions and their
//!   (sub)gradients (paper eqs. 14–19).
//! * [`coords`] — node coordinates and the `u · v` predictor.
//! * [`update`] — the SGD update rule shared by eqs. 9, 10, 12, 13.
//! * [`node`] — per-node protocol state machines: Algorithm 1 (RTT,
//!   symmetric, sender-inferred) and Algorithm 2 (ABW, asymmetric,
//!   target-inferred).
//! * [`config`] — hyper-parameters with the paper's defaults
//!   (`r = 10`, `η = 0.1`, `λ = 0.1`, logistic loss).
//! * [`provider`] — measurement sources: ground-truth class labels
//!   (optionally error-injected), raw quantities, and simulated
//!   pathload/pathchirp probes.
//! * [`system`] — population-level driver replaying random-pair or
//!   timestamp-ordered measurement schedules (the paper's evaluation
//!   protocol).
//! * [`runner`] — the same node logic driven through `dmf-simnet`
//!   message passing with latency and loss, demonstrating the fully
//!   decentralized operation.
//! * [`multiclass`] — the paper's §7 future work implemented: ordinal
//!   prediction of more than two performance classes via
//!   immediate-threshold losses, degenerating exactly to the binary
//!   formulation at `C = 2`.
//!
//! The two drivers are complementary: [`system`] replays the paper's
//! evaluation schedule with zero transport cost, while [`runner`]
//! pushes every protocol step through [`dmf_simnet::SimNet`] with
//! latency and loss — same nodes, different substrate.
//!
//! # Position in the workspace
//!
//! Depends on [`dmf_linalg`] (coordinates, score matrices),
//! [`dmf_datasets`] (training data, [`dmf_datasets::ClassMatrix`])
//! and [`dmf_simnet`] (the simulated network under [`runner`], the
//! probe instruments behind [`provider`]). Downstream, `dmf-eval`
//! scores its predictions, `dmf-baselines` solves the same objective
//! centrally, `dmf-agent` deploys the node logic over UDP, and
//! `dmf-bench` sweeps its hyper-parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod coords;
pub mod loss;
pub mod multiclass;
pub mod node;
pub mod provider;
pub mod runner;
pub mod system;
pub mod update;

pub use config::{DmfsgdConfig, PredictionMode, SgdParams};
pub use coords::{CoordVec, Coordinates};
pub use loss::Loss;
pub use node::DmfsgdNode;
pub use runner::{ExchangeFidelity, SimnetRunner};
pub use system::DmfsgdSystem;
