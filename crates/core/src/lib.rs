//! # dmf-core — DMFSGD
//!
//! The primary contribution of *"Decentralized Prediction of End-to-End
//! Network Performance Classes"* (Liao, Du, Geurts, Leduc — CoNEXT
//! 2011): **D**ecentralized **M**atrix **F**actorization by
//! **S**tochastic **G**radient **D**escent.
//!
//! Every node `i` keeps two rank-`r` coordinate vectors `u_i` and
//! `v_i`; the predicted performance measure from `i` to `j` is
//! `x̂_ij = u_i · v_j`, and for class-based prediction its sign is the
//! predicted class. Nodes probe only `k` random neighbors; each
//! measurement triggers a constant-time local SGD step — no central
//! server, no landmarks, no materialized matrix.
//!
//! The primary entry point is the [`session`] module: build a
//! long-lived [`Session`] with [`SessionBuilder`] (panic-free, typed
//! [`DmfsgdError`]s), feed it measurements through one of the three
//! [`Driver`] front-ends, query it incrementally, and persist it with
//! [`Snapshot`]s.
//!
//! Crate layout:
//!
//! * [`loss`] — the L2 / hinge / logistic loss functions and their
//!   (sub)gradients (paper eqs. 14–19).
//! * [`coords`] — node coordinates and the `u · v` predictor.
//! * [`update`] — the SGD update rule shared by eqs. 9, 10, 12, 13.
//! * [`node`] — per-node protocol state machines: Algorithm 1 (RTT,
//!   symmetric, sender-inferred) and Algorithm 2 (ABW, asymmetric,
//!   target-inferred).
//! * [`config`] — hyper-parameters with the paper's defaults
//!   (`r = 10`, `η = 0.1`, `λ = 0.1`, logistic loss).
//! * [`error`] — the [`DmfsgdError`] hierarchy: no public constructor
//!   or method of the session layer panics on user input.
//! * [`provider`] — measurement sources: ground-truth class labels
//!   (optionally error-injected), raw quantities, and simulated
//!   pathload/pathchirp probes.
//! * [`session`] — the service API: [`Session`], [`SessionBuilder`],
//!   dynamic membership (join/leave/churn), incremental queries, and
//!   the [`Driver`] trait all front-ends implement.
//! * [`snapshot`] — serializable checkpoints; restore is
//!   bit-identical to never having stopped.
//! * [`view`] — the read half of the session's read/write split:
//!   [`Session::publish`] snapshots the coordinates into an immutable
//!   [`CoordView`] that keeps answering queries while a training
//!   round holds `&mut Session` (the shard-serving primitive behind
//!   `dmf-service`).
//! * [`epoch`] — the concurrent form of that read half: an
//!   [`EpochView`] lays the published slots out as per-slot seqlocks
//!   so reader threads never take a lock (and never see a torn
//!   slot) while a single writer republishes batches behind a
//!   monotone epoch counter.
//! * [`runner`] — the simulated-network front-end
//!   ([`runner::SimnetDriver`]): the same node logic driven through
//!   `dmf-simnet` message passing with latency and loss,
//!   demonstrating the fully decentralized operation.
//! * [`multiclass`] — the paper's §7 future work implemented: ordinal
//!   prediction of more than two performance classes via
//!   immediate-threshold losses, degenerating exactly to the binary
//!   formulation at `C = 2`.
//!
//! The front-ends are complementary: [`session::OracleDriver`]
//! replays the paper's evaluation schedule with zero transport cost,
//! [`runner::SimnetDriver`] pushes every protocol step through
//! [`dmf_simnet::SimNet`] with latency and loss, and
//! `dmf_agent::UdpDriver` does the same over real sockets — same
//! session, different substrate.
//!
//! # Position in the workspace
//!
//! Depends on [`dmf_linalg`] (coordinates, score matrices),
//! [`dmf_datasets`] (training data, [`dmf_datasets::ClassMatrix`]),
//! [`dmf_simnet`] (the simulated network under [`runner`], the
//! probe instruments behind [`provider`]) and [`dmf_proto`] (wire
//! decode errors wrapped into [`DmfsgdError`]). Downstream,
//! `dmf-eval` scores its predictions, `dmf-baselines` solves the same
//! objective centrally, `dmf-agent` deploys the node logic over UDP,
//! and `dmf-bench` sweeps its hyper-parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod coords;
#[deny(missing_docs)]
pub mod epoch;
#[deny(missing_docs)]
pub mod error;
pub mod loss;
pub mod multiclass;
pub mod node;
pub mod provider;
pub mod runner;
#[deny(missing_docs)]
pub mod session;
pub mod sharded;
#[deny(missing_docs)]
pub mod snapshot;
pub mod update;
#[deny(missing_docs)]
pub mod view;

pub use config::{DmfsgdConfig, PredictionMode, SgdParams};
pub use coords::{CoordVec, Coordinates};
pub use epoch::EpochView;
pub use error::{ConfigError, DmfsgdError, MembershipError, NodeId, SnapshotError};
pub use loss::Loss;
pub use node::DmfsgdNode;
pub use runner::{ExchangeFidelity, SimnetDriver, SimnetRunner, WireStats};
pub use session::{Driver, OracleDriver, Session, SessionBuilder};
pub use sharded::ShardedSimnetDriver;
pub use snapshot::Snapshot;
pub use view::CoordView;
