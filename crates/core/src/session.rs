//! The long-lived service API: [`Session`], [`SessionBuilder`] and the
//! [`Driver`] trait.
//!
//! The paper's DMFSGD is an *online, decentralized service*: nodes
//! join, probe, learn and answer "is the path i→j good or bad?"
//! continuously. A [`Session`] is the in-process embodiment of that
//! service — a population of [`DmfsgdNode`] state machines plus their
//! neighbor sets, probe-scheduling RNG and measurement counters — with
//! four capabilities the historical one-shot harness lacked:
//!
//! * **Panic-free construction** — [`SessionBuilder`] validates every
//!   knob and returns [`ConfigError`] instead of asserting.
//! * **Dynamic membership** — [`Session::join`] and [`Session::leave`]
//!   admit and retire nodes mid-run; neighbor sets are repaired
//!   incrementally (in-place CSR swaps, no rebuild) so churn scenarios
//!   are first-class.
//! * **Snapshots** — [`Session::snapshot`] captures coordinates,
//!   configuration and RNG position; [`Session::restore`] resumes
//!   bit-identically (see [`crate::snapshot`]).
//! * **Incremental queries** — [`Session::predict`],
//!   [`Session::predict_class`] and [`Session::rank_neighbors`] read
//!   live coordinates through the fused dot-product kernels without
//!   materializing the n² score matrix.
//!
//! How measurements reach the session is the business of a [`Driver`]:
//! the matrix-replay [`OracleDriver`] (this module), the simulated
//! network ([`crate::runner::SimnetDriver`]) and the real UDP
//! deployment (`dmf_agent::UdpDriver`) all advance the *same*
//! `Session`, so a population can be trained by one front-end,
//! snapshotted, and resumed under another.

use crate::config::{DmfsgdConfig, PredictionMode};
use crate::coords::Coordinates;
use crate::error::{ConfigError, DmfsgdError, MembershipError, NodeId};
use crate::loss::Loss;
use crate::node::DmfsgdNode;
use crate::provider::MeasurementProvider;
use crate::snapshot::Snapshot;
use crate::view::CoordView;
use dmf_datasets::{DynamicTrace, Metric};
use dmf_linalg::Matrix;
use dmf_simnet::NeighborSets;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One remote RTT reply in a batch handed to
/// [`Session::apply_rtt_remote_batch`]: the measuring node `i`, the
/// observed class `x`, and the reply coordinates `(u_j, v_j)`
/// borrowed from wherever the router fetched them.
#[derive(Clone, Copy, Debug)]
pub struct RemoteRtt<'a> {
    /// The node applying the measurement (must be alive here).
    pub i: NodeId,
    /// The measured RTT class (must be finite).
    pub x: f64,
    /// The remote peer's `u` coordinates (must match the rank).
    pub u_j: &'a [f64],
    /// The remote peer's `v` coordinates (must match the rank).
    pub v_j: &'a [f64],
}

/// A long-lived DMFSGD population: the primary entry point of this
/// crate (and of the `dmfsgd` facade).
///
/// Construct one with [`Session::builder`], feed it measurements
/// through a [`Driver`] (or directly via
/// [`apply_measurement`](Session::apply_measurement)), query it with
/// [`predict`](Session::predict) /
/// [`rank_neighbors`](Session::rank_neighbors), and persist it with
/// [`snapshot`](Session::snapshot).
#[derive(Clone, Debug)]
pub struct Session {
    pub(crate) config: DmfsgdConfig,
    pub(crate) tau: Option<f64>,
    pub(crate) nodes: Vec<DmfsgdNode>,
    pub(crate) neighbors: NeighborSets,
    /// Alive slots, densely packed for O(1) uniform sampling. The
    /// *order* of this list is part of the deterministic state (it
    /// decides which node a given RNG draw selects) and is therefore
    /// captured by snapshots.
    pub(crate) alive_list: Vec<NodeId>,
    /// `slot_pos[id]` is the position of `id` in `alive_list`, or
    /// `None` for departed slots.
    pub(crate) slot_pos: Vec<Option<u32>>,
    /// Departed slots, most recently departed last. `join` reuses the
    /// most recent departure first (LIFO keeps the population compact
    /// and the behaviour deterministic).
    pub(crate) free: Vec<NodeId>,
    pub(crate) rng: ChaCha8Rng,
    pub(crate) measurements: usize,
}

impl Session {
    /// Starts a fluent builder preloaded with the paper's default
    /// configuration (`r = 10`, `η = λ = 0.1`, logistic loss,
    /// `k = 10`).
    pub fn builder() -> SessionBuilder {
        SessionBuilder::new()
    }

    /// Builds the initial population. RNG consumption order (node
    /// coordinates first, then neighbor sets) matches the historical
    /// one-shot harness, so oracle-driven runs are bit-compatible with
    /// earlier releases.
    pub(crate) fn from_validated(config: DmfsgdConfig, n: usize, tau: Option<f64>) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
        let nodes = (0..n)
            .map(|i| DmfsgdNode::new(i, config.rank, &mut rng))
            .collect();
        let neighbors = NeighborSets::random(n, config.k, &mut rng);
        Self {
            config,
            tau,
            nodes,
            neighbors,
            alive_list: (0..n).collect(),
            slot_pos: (0..n).map(|i| Some(i as u32)).collect(),
            free: Vec::new(),
            rng,
            measurements: 0,
        }
    }

    // ---- introspection ----------------------------------------------

    /// The configuration in force.
    pub fn config(&self) -> &DmfsgdConfig {
        &self.config
    }

    /// The classification threshold τ configured at build time, if
    /// any (drivers that classify raw measurements need one).
    pub fn tau(&self) -> Option<f64> {
        self.tau
    }

    /// Number of node slots (alive and departed). Score matrices from
    /// [`predicted_scores`](Self::predicted_scores) are `len × len`.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the session has no node slots.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of alive nodes.
    pub fn num_alive(&self) -> usize {
        self.alive_list.len()
    }

    /// Alive node ids, in sampling order.
    pub fn alive(&self) -> &[NodeId] {
        &self.alive_list
    }

    /// True when `id` names a slot whose node is currently a member.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.slot_pos.get(id).is_some_and(|p| p.is_some())
    }

    /// Immutable view of a node slot (`None` for out-of-range ids;
    /// departed slots still expose their last coordinates).
    pub fn node(&self, id: NodeId) -> Option<&DmfsgdNode> {
        self.nodes.get(id)
    }

    /// All node slots, indexed by id.
    pub fn nodes(&self) -> &[DmfsgdNode] {
        &self.nodes
    }

    /// Consumes the session and returns the trained nodes.
    pub fn into_nodes(self) -> Vec<DmfsgdNode> {
        self.nodes
    }

    /// The neighbor sets in force.
    pub fn neighbors(&self) -> &NeighborSets {
        &self.neighbors
    }

    /// Total measurements processed so far.
    pub fn measurements_used(&self) -> usize {
        self.measurements
    }

    /// Average measurements per alive node — the x-axis of the paper's
    /// convergence plot (Figure 5c).
    pub fn avg_measurements_per_node(&self) -> f64 {
        self.measurements as f64 / self.alive_list.len().max(1) as f64
    }

    // ---- incremental queries ----------------------------------------

    /// Checks that `id` names an alive node.
    fn check_alive(&self, id: NodeId) -> Result<(), MembershipError> {
        match self.slot_pos.get(id) {
            None => Err(MembershipError::UnknownNode {
                id,
                slots: self.nodes.len(),
            }),
            Some(None) => Err(MembershipError::Departed { id }),
            Some(Some(_)) => Ok(()),
        }
    }

    fn check_pair(&self, i: NodeId, j: NodeId) -> Result<(), MembershipError> {
        self.check_alive(i)?;
        self.check_alive(j)?;
        if i == j {
            return Err(MembershipError::SelfPair { id: i });
        }
        Ok(())
    }

    /// Raw predictor output `u_i · v_j` without membership checks
    /// (slot indices must be in range). Departed slots yield their
    /// last coordinates.
    #[inline]
    pub(crate) fn raw_score_unchecked(&self, i: usize, j: usize) -> f64 {
        self.nodes[i].predict_to(&self.nodes[j])
    }

    /// Raw predictor output `u_i · v_j` (the score whose sign is the
    /// predicted class; peer selection ranks this directly). One fused
    /// dot product over live coordinates — no matrix involved.
    pub fn raw_score(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        self.check_pair(i, j)?;
        Ok(self.raw_score_unchecked(i, j))
    }

    /// Predicted measure in natural units: the raw score in class
    /// mode, scaled back to ms/Mbps in quantity mode.
    pub fn predict(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let raw = self.raw_score(i, j)?;
        Ok(match self.config.mode {
            PredictionMode::Class => raw,
            PredictionMode::Quantity { value_scale } => raw * value_scale,
        })
    }

    /// Predicted class of the path `i → j`: `+1.0` ("good") when the
    /// raw score is non-negative, `-1.0` ("bad") otherwise.
    pub fn predict_class(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let raw = self.raw_score(i, j)?;
        Ok(if raw >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Node `i`'s neighbors ranked by predicted score, best first
    /// (score descending, id ascending on ties), truncated to
    /// `top_k`. This is the peer-selection primitive (§6.4) computed
    /// incrementally: `k` dot products, no n² matrix.
    pub fn rank_neighbors(
        &self,
        i: NodeId,
        top_k: usize,
    ) -> Result<Vec<(NodeId, f64)>, DmfsgdError> {
        let mut ranked = Vec::new();
        self.rank_neighbors_into(i, top_k, &mut ranked)?;
        Ok(ranked)
    }

    /// [`rank_neighbors`](Self::rank_neighbors) into a caller-owned
    /// buffer (cleared first), reusing its allocation across queries.
    /// This is the serving-path variant: a shard worker answering rank
    /// traffic keeps one buffer per connection and never allocates per
    /// query. On error the buffer is left cleared.
    pub fn rank_neighbors_into(
        &self,
        i: NodeId,
        top_k: usize,
        out: &mut Vec<(NodeId, f64)>,
    ) -> Result<(), DmfsgdError> {
        out.clear();
        self.check_alive(i)?;
        out.extend(
            self.neighbors
                .neighbors(i)
                .iter()
                .map(|&j| (j, self.raw_score_unchecked(i, j))),
        );
        rank_scored(out, top_k);
        Ok(())
    }

    /// Publishes an immutable [`CoordView`] of the current
    /// coordinates, membership and neighbor rows — the read half of
    /// the session's read/write split. The view answers the
    /// incremental queries bit-identically to this session *as of
    /// now* and stays valid (and stale) while the session keeps
    /// training; refresh it with [`CoordView::republish_node`] (per
    /// update, `O(r)`) or [`CoordView::republish_from`].
    pub fn publish(&self) -> CoordView {
        CoordView::capture(self)
    }

    /// Materializes all pairwise raw scores (diagonal zeroed) for
    /// *evaluation*, batched as one `U·Vᵀ` product over contiguously
    /// packed coordinate rows — bitwise-identical to per-pair
    /// [`raw_score`](Self::raw_score) calls. Departed slots contribute
    /// their last coordinates. Prefer the incremental queries for
    /// serving; this is for offline ROC/AUC computation.
    pub fn predicted_scores(&self) -> Matrix {
        crate::runner::batched_scores(&self.nodes)
    }

    /// [`predicted_scores`](Self::predicted_scores) into an existing
    /// matrix, reusing its allocation across repeated evaluations.
    pub fn predicted_scores_into(&self, out: &mut Matrix) {
        crate::runner::batched_scores_into(&self.nodes, out);
    }

    /// Fallible [`predicted_scores`](Self::predicted_scores): routes
    /// the batched `U·Vᵀ` product through the typed-error matmul
    /// surface, so a coordinate-shape inconsistency (e.g. hand-built
    /// node state whose `u` and `v` ranks differ) surfaces as
    /// [`DmfsgdError::Shape`] instead of a panic. The infallible
    /// queries keep the assert — a valid session cannot hit it
    /// (imports are rank-validated).
    pub fn try_predicted_scores(&self) -> Result<Matrix, DmfsgdError> {
        let mut out = Matrix::zeros(0, 0);
        self.try_predicted_scores_into(&mut out)?;
        Ok(out)
    }

    /// [`try_predicted_scores`](Self::try_predicted_scores) into an
    /// existing matrix, reusing its allocation. On error the output is
    /// left untouched.
    pub fn try_predicted_scores_into(&self, out: &mut Matrix) -> Result<(), DmfsgdError> {
        crate::runner::try_batched_scores_into(&self.nodes, out)
    }

    /// Reference implementation of
    /// [`predicted_scores`](Self::predicted_scores): one per-pair dot
    /// at a time. Kept for the equivalence property tests.
    pub fn predicted_scores_naive(&self) -> Matrix {
        let n = self.len();
        Matrix::from_fn(n, n, |i, j| {
            if i == j {
                0.0
            } else {
                self.raw_score_unchecked(i, j)
            }
        })
    }

    // ---- training ---------------------------------------------------

    /// Applies a measurement without membership checks (ids must be in
    /// range and distinct). Hot-path entry for the drivers, which
    /// guarantee validity structurally.
    #[inline]
    pub(crate) fn apply_unchecked(&mut self, i: usize, j: usize, x: f64, metric: Metric) {
        let params = self.config.sgd;
        if metric.is_symmetric() {
            // Algorithm 1: the reply carries (u_j, v_j); node i updates.
            let (u_j, v_j) = self.nodes[j].rtt_reply();
            self.nodes[i].on_rtt_measurement(x, &u_j, &v_j, &params);
        } else {
            // Algorithm 2: node j infers x and updates v_j, node i
            // updates u_i with the pre-update v_j snapshot.
            let u_i = self.nodes[i].coords.u.clone();
            let v_snapshot = self.nodes[j].on_abw_probe(x, &u_i, &params);
            self.nodes[i].on_abw_reply(x, &v_snapshot, &params);
        }
        self.measurements += 1;
    }

    /// Applies an RTT-class measurement at node `i` against a *remote*
    /// reply `(u_j, v_j)` — Algorithm 1 steps 3–4 with the reply
    /// coordinates supplied by the caller instead of read from this
    /// session.
    ///
    /// This is the sharded-serving entry point: when node `j` lives on
    /// another shard, the router fetches `j`'s published reply
    /// coordinates there and hands them to the shard owning `i`, which
    /// applies the update locally — exactly the paper's protocol shape
    /// (the probe reply carries `(u_j, v_j)` across the network). The
    /// reply is validated (rank, finiteness) so a buggy or hostile
    /// peer cannot corrupt the session.
    pub fn apply_rtt_remote(
        &mut self,
        i: NodeId,
        x: f64,
        u_j: &[f64],
        v_j: &[f64],
    ) -> Result<(), DmfsgdError> {
        self.check_alive(i)?;
        let rank = self.config.rank;
        if u_j.len() != rank || v_j.len() != rank {
            return Err(DmfsgdError::Import(format!(
                "remote reply has rank {}/{}, session expects {rank}",
                u_j.len(),
                v_j.len()
            )));
        }
        if !x.is_finite() || !u_j.iter().chain(v_j.iter()).all(|c| c.is_finite()) {
            return Err(DmfsgdError::Import(
                "remote reply carries non-finite values".to_string(),
            ));
        }
        let params = self.config.sgd;
        self.nodes[i].on_rtt_measurement(x, u_j, v_j, &params);
        self.measurements += 1;
        Ok(())
    }

    /// Applies a whole batch of remote RTT replies through
    /// [`apply_rtt_remote`](Self::apply_rtt_remote) semantics,
    /// amortizing the per-update entry overhead — the shard workers'
    /// drain path.
    ///
    /// Validation is all-or-nothing: every update is checked
    /// (membership, rank, finiteness — the same checks in the same
    /// order as the per-update entry point) *before* any is applied,
    /// and the first failure is returned with the session untouched.
    /// On success the updates apply in slice order, and `pre_scores`
    /// (cleared first) receives each update's *pre-update* raw score
    /// `u_i · v_j` — the score `u_i` held when that update's turn
    /// came, so a batch is bit-identical to the same updates applied
    /// one at a time with the score read before each.
    pub fn apply_rtt_remote_batch(
        &mut self,
        updates: &[RemoteRtt<'_>],
        pre_scores: &mut Vec<f64>,
    ) -> Result<(), DmfsgdError> {
        let rank = self.config.rank;
        for up in updates {
            self.check_alive(up.i)?;
            if up.u_j.len() != rank || up.v_j.len() != rank {
                return Err(DmfsgdError::Import(format!(
                    "remote reply has rank {}/{}, session expects {rank}",
                    up.u_j.len(),
                    up.v_j.len()
                )));
            }
            if !up.x.is_finite() || !up.u_j.iter().chain(up.v_j.iter()).all(|c| c.is_finite()) {
                return Err(DmfsgdError::Import(
                    "remote reply carries non-finite values".to_string(),
                ));
            }
        }
        pre_scores.clear();
        let params = self.config.sgd;
        for up in updates {
            pre_scores.push(crate::coords::dot(&self.nodes[up.i].coords.u, up.v_j));
            self.nodes[up.i].on_rtt_measurement(up.x, up.u_j, up.v_j, &params);
        }
        self.measurements += updates.len();
        Ok(())
    }

    /// Applies an already-obtained measurement value for the ordered
    /// pair `(i, j)` through the proper algorithm (used by trace
    /// replay and by external transports that measure on their own).
    pub fn apply_measurement(
        &mut self,
        i: NodeId,
        j: NodeId,
        x: f64,
        metric: Metric,
    ) -> Result<(), DmfsgdError> {
        self.check_pair(i, j)?;
        self.apply_unchecked(i, j, x, metric);
        Ok(())
    }

    /// Processes one measurement for the ordered pair `(i, j)` from
    /// `provider`. Returns `Ok(false)` when the pair could not be
    /// measured (missing ground truth — not an error: a failed probe
    /// just loses one training opportunity).
    pub fn process_pair(
        &mut self,
        i: NodeId,
        j: NodeId,
        provider: &mut dyn MeasurementProvider,
    ) -> Result<bool, DmfsgdError> {
        self.check_pair(i, j)?;
        let Some(x) = provider.measure(i, j, &mut self.rng) else {
            return Ok(false);
        };
        self.apply_unchecked(i, j, x, provider.metric());
        Ok(true)
    }

    /// One protocol tick: a random alive node probes a random
    /// neighbor. Returns whether the drawn pair was measurable.
    pub fn tick(&mut self, provider: &mut dyn MeasurementProvider) -> Result<bool, DmfsgdError> {
        let i = self.alive_list[self.rng.gen_range(0..self.alive_list.len())];
        let j = self.neighbors.sample_neighbor(i, &mut self.rng);
        let Some(x) = provider.measure(i, j, &mut self.rng) else {
            return Ok(false);
        };
        self.apply_unchecked(i, j, x, provider.metric());
        Ok(true)
    }

    /// Runs `count` ticks (unmeasurable draws still consume a tick, as
    /// a failed probe consumes a probing slot in practice). Returns
    /// the number of measurements actually applied.
    pub fn run(
        &mut self,
        count: usize,
        provider: &mut dyn MeasurementProvider,
    ) -> Result<usize, DmfsgdError> {
        if provider.len() != self.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: provider.len(),
                session: self.len(),
            }
            .into());
        }
        let mut applied = 0;
        for _ in 0..count {
            if self.tick(provider)? {
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Replays a dynamic trace in timestamp order (the Harvard
    /// protocol): each measurement `(t, i, j, value)` is classified at
    /// `tau` (class mode) or scaled (quantity mode) and applied at
    /// node `i` via Algorithm 1. Returns the number of measurements
    /// applied.
    ///
    /// Measurements touching a *departed* node are skipped, not
    /// errors — consistent with the probe semantics everywhere else
    /// (a measurement against an absent node just loses one training
    /// opportunity), so trace replay composes with churn. The return
    /// value counts only what was applied.
    pub fn run_trace(&mut self, trace: &DynamicTrace, tau: f64) -> Result<usize, DmfsgdError> {
        if trace.nodes != self.len() {
            return Err(MembershipError::TraceMismatch {
                trace: trace.nodes,
                session: self.len(),
            }
            .into());
        }
        if !trace.is_time_ordered() {
            return Err(MembershipError::TraceNotTimeOrdered.into());
        }
        let mut applied = 0;
        for m in &trace.measurements {
            // A malformed trace (ids beyond the declared population, a
            // self-pair) is still a hard error; only membership state
            // downgrades to a skip.
            match self.check_pair(m.from, m.to) {
                Ok(()) => {}
                Err(MembershipError::Departed { .. }) => continue,
                Err(e) => return Err(e.into()),
            }
            let x = match self.config.mode {
                PredictionMode::Class => trace.metric.classify(m.value, tau),
                PredictionMode::Quantity { value_scale } => m.value / value_scale,
            };
            self.apply_unchecked(m.from, m.to, x, trace.metric);
            applied += 1;
        }
        Ok(applied)
    }

    /// Bulk-imports node states trained by an external front-end (the
    /// UDP agents train thread-local copies and write them back here),
    /// crediting `applied` measurements to the session counter. The
    /// import is validated — id order, coordinate rank and finiteness
    /// — so a buggy or hostile transport cannot corrupt the session.
    pub fn import_nodes(
        &mut self,
        nodes: Vec<DmfsgdNode>,
        applied: usize,
    ) -> Result<(), DmfsgdError> {
        if nodes.len() != self.nodes.len() {
            return Err(MembershipError::ProviderMismatch {
                provider: nodes.len(),
                session: self.nodes.len(),
            }
            .into());
        }
        validate_node_array(&nodes, self.config.rank).map_err(DmfsgdError::Import)?;
        self.nodes = nodes;
        self.measurements += applied;
        Ok(())
    }

    /// Advances the session through `rounds` rounds of `driver`.
    /// Returns the total measurements applied.
    pub fn drive<D: Driver + ?Sized>(
        &mut self,
        driver: &mut D,
        rounds: usize,
    ) -> Result<usize, DmfsgdError> {
        let mut total = 0;
        for _ in 0..rounds {
            total += driver.round(self)?;
        }
        Ok(total)
    }

    // ---- membership -------------------------------------------------

    /// Samples `count` distinct alive nodes by partial Fisher–Yates
    /// over the alive list.
    fn sample_alive_distinct(&mut self, count: usize) -> Vec<NodeId> {
        let mut pool = self.alive_list.clone();
        debug_assert!(pool.len() >= count);
        for i in 0..count {
            let j = self.rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        pool.truncate(count);
        pool
    }

    /// Admits a new node: fresh random coordinates, a fresh neighbor
    /// set of `k` alive references. The most recently departed slot is
    /// reused when one exists; otherwise a new slot is appended (note
    /// that drivers bound to a fixed-size substrate, and providers
    /// replaying a fixed-size matrix, only cover the original slots).
    ///
    /// Returns the id of the new member.
    pub fn join(&mut self) -> Result<NodeId, DmfsgdError> {
        // The newcomer needs k distinct alive references (it is not in
        // the alive list itself, so no self-exclusion is needed).
        if self.alive_list.len() < self.config.k {
            return Err(MembershipError::TooFewAlive {
                alive: self.alive_list.len(),
                k: self.config.k,
            }
            .into());
        }
        // Stable draw order: coordinates first, then the neighbor row
        // (mirrors initial construction).
        let coords = Coordinates::random(self.config.rank, &mut self.rng);
        let row = self.sample_alive_distinct(self.config.k);
        let id = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = DmfsgdNode {
                    id: slot,
                    coords,
                    updates: 0,
                };
                self.neighbors.set_row(slot, &row);
                slot
            }
            None => {
                let slot = self.nodes.len();
                self.nodes.push(DmfsgdNode {
                    id: slot,
                    coords,
                    updates: 0,
                });
                self.slot_pos.push(None);
                self.neighbors.add_node(&row);
                slot
            }
        };
        self.slot_pos[id] = Some(self.alive_list.len() as u32);
        self.alive_list.push(id);
        Ok(id)
    }

    /// Retires node `id`. Every alive node that referenced it gets the
    /// dangling entry swapped — in place, no CSR rebuild — for a fresh
    /// alive reference, so probing never selects a departed target.
    ///
    /// Fails with [`MembershipError::Departed`] on a duplicate leave
    /// and with [`MembershipError::TooFewAlive`] when the departure
    /// would make neighbor sets of size `k` impossible.
    pub fn leave(&mut self, id: NodeId) -> Result<(), DmfsgdError> {
        self.check_alive(id)?;
        let alive_after = self.alive_list.len() - 1;
        // Every remaining node needs k distinct alive references
        // besides itself.
        if alive_after < self.config.k + 1 {
            return Err(MembershipError::TooFewAlive {
                alive: alive_after,
                k: self.config.k,
            }
            .into());
        }
        // Drop from the dense alive list (swap-remove keeps it dense).
        let pos = self.slot_pos[id].take().expect("checked alive above") as usize;
        self.alive_list.swap_remove(pos);
        if let Some(&moved) = self.alive_list.get(pos) {
            self.slot_pos[moved] = Some(pos as u32);
        }
        self.free.push(id);
        // Repair: every alive row that referenced the leaver gets a
        // fresh alive reference not already in that row.
        let affected = self.neighbors.rows_containing(id);
        for i in affected {
            if !self.is_alive(i) {
                continue; // stale row of a departed slot: left as-is
            }
            let replacement = {
                let row = self.neighbors.neighbors(i);
                let candidates: Vec<NodeId> = self
                    .alive_list
                    .iter()
                    .copied()
                    .filter(|&c| c != i && !row.contains(&c))
                    .collect();
                debug_assert!(!candidates.is_empty(), "guarded by the k+1 check");
                candidates[self.rng.gen_range(0..candidates.len())]
            };
            self.neighbors.replace_in_row(i, id, replacement);
        }
        Ok(())
    }

    // ---- snapshots --------------------------------------------------

    /// Captures the complete deterministic state — configuration,
    /// coordinates, neighbor sets, membership and RNG position — as a
    /// serializable [`Snapshot`]. `restore(snapshot)` followed by any
    /// sequence of operations is bit-identical to running the same
    /// sequence on the live session.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::capture(self)
    }

    /// Rebuilds a session from a snapshot, verifying its internal
    /// consistency (a corrupt or hand-tampered snapshot yields a
    /// [`crate::error::SnapshotError`], never a panic).
    pub fn restore(snapshot: &Snapshot) -> Result<Self, DmfsgdError> {
        snapshot.rebuild()
    }
}

/// Sorts `(id, score)` pairs best-first — score descending, id
/// ascending on ties — and truncates to `top_k`. The single ordering
/// shared by [`Session::rank_neighbors_into`],
/// [`CoordView::rank_neighbors_into`] and the cross-shard rank merge
/// in `dmf-service`, so every surface breaks ties identically.
pub fn rank_scored(scored: &mut Vec<(NodeId, f64)>, top_k: usize) {
    scored.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });
    scored.truncate(top_k);
}

/// Validates a node array against the expected shape: dense id order
/// (`nodes[i].id == i`), uniform coordinate rank, finite coordinates.
/// Shared by [`Session::import_nodes`] and snapshot restore so the
/// two surfaces cannot drift apart; returns a description of the
/// first violation.
pub(crate) fn validate_node_array(nodes: &[DmfsgdNode], rank: usize) -> Result<(), String> {
    for (i, node) in nodes.iter().enumerate() {
        if node.id != i {
            return Err(format!("node at index {i} carries id {}", node.id));
        }
        if node.coords.u.len() != rank || node.coords.v.len() != rank {
            return Err(format!(
                "node {i} has rank {}/{}, expected {rank}",
                node.coords.u.len(),
                node.coords.v.len()
            ));
        }
        if !node
            .coords
            .u
            .iter()
            .chain(node.coords.v.iter())
            .all(|x| x.is_finite())
        {
            return Err(format!("node {i} has non-finite coordinates"));
        }
    }
    Ok(())
}

/// Fluent, validating constructor for [`Session`].
///
/// ```
/// use dmf_core::Session;
///
/// let session = Session::builder()
///     .nodes(64)
///     .rank(10)
///     .eta(0.1)
///     .lambda(0.1)
///     .k(16)
///     .seed(7)
///     .build()?;
/// assert_eq!(session.num_alive(), 64);
/// # Ok::<(), dmf_core::ConfigError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SessionBuilder {
    n: usize,
    config: DmfsgdConfig,
    tau: Option<f64>,
}

impl Default for SessionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SessionBuilder {
    /// A builder preloaded with the paper defaults and an empty
    /// population (set [`nodes`](Self::nodes) before building).
    pub fn new() -> Self {
        Self {
            n: 0,
            config: DmfsgdConfig::paper_defaults(),
            tau: None,
        }
    }

    /// A builder whose knobs start from an existing configuration.
    pub fn from_config(config: DmfsgdConfig) -> Self {
        Self {
            n: 0,
            config,
            tau: None,
        }
    }

    /// Adopts every knob of `config` (rank, SGD parameters, `k`, mode
    /// and seed), keeping the population size and τ.
    pub fn config(mut self, config: DmfsgdConfig) -> Self {
        self.config = config;
        self
    }

    /// Population size `n` (must exceed `k`).
    pub fn nodes(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Factorization rank `r` (coordinate length; paper default 10).
    pub fn rank(mut self, rank: usize) -> Self {
        self.config.rank = rank;
        self
    }

    /// Learning rate `η` (paper default 0.1).
    pub fn eta(mut self, eta: f64) -> Self {
        self.config.sgd.eta = eta;
        self
    }

    /// Regularization coefficient `λ` (paper default 0.1).
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.config.sgd.lambda = lambda;
        self
    }

    /// Loss function (paper default logistic).
    pub fn loss(mut self, loss: Loss) -> Self {
        self.config.sgd.loss = loss;
        self
    }

    /// Neighbor count `k` per node (paper default 10; 32 for
    /// Meridian).
    pub fn k(mut self, k: usize) -> Self {
        self.config.k = k;
        self
    }

    /// Seed for coordinate initialization and probe scheduling.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Classification threshold τ, in the metric's natural units.
    /// Optional for matrix replay (labels arrive pre-classified);
    /// required by drivers that classify raw measurements, such as the
    /// simnet and UDP front-ends.
    pub fn tau(mut self, tau: f64) -> Self {
        self.tau = Some(tau);
        self
    }

    /// Switches to class-based prediction (the paper's contribution;
    /// the default).
    pub fn class(mut self) -> Self {
        self.config.mode = PredictionMode::Class;
        self
    }

    /// Switches to quantity-based (regression) prediction with the
    /// given value scale, and to the L2 loss it requires.
    pub fn quantity(mut self, value_scale: f64) -> Self {
        self.config.mode = PredictionMode::Quantity { value_scale };
        self.config.sgd.loss = Loss::L2;
        self
    }

    /// Validates every knob and builds the session. No panic on any
    /// input: each violated range maps to a [`ConfigError`] variant.
    pub fn build(self) -> Result<Session, ConfigError> {
        self.config.try_validate()?;
        if self.n <= self.config.k {
            return Err(ConfigError::TooFewNodes {
                n: self.n,
                k: self.config.k,
            });
        }
        if let Some(tau) = self.tau {
            ConfigError::check_tau(tau)?;
        }
        Ok(Session::from_validated(self.config, self.n, self.tau))
    }
}

/// One front-end advancing a [`Session`].
///
/// A driver owns the *transport* (a replayed matrix, a simulated
/// network, real UDP sockets) while the session owns the *state*
/// (coordinates, neighbor sets, RNG, counters). One round is a
/// driver-defined quantum — a batch of oracle ticks, a slice of
/// simulated time, a wall-clock burst — after which control returns so
/// callers can interleave queries, snapshots or membership changes
/// with training.
pub trait Driver {
    /// Advances `session` by one round; returns the number of
    /// measurements applied.
    fn round(&mut self, session: &mut Session) -> Result<usize, DmfsgdError>;
}

/// The matrix-replay front-end: measurements come from a
/// [`MeasurementProvider`] (ground-truth labels, raw quantities, or
/// simulated probe tools), scheduled as random node/neighbor draws —
/// the paper's evaluation protocol.
pub struct OracleDriver<P> {
    provider: P,
    ticks_per_round: usize,
}

impl<P> std::fmt::Debug for OracleDriver<P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OracleDriver")
            .field("ticks_per_round", &self.ticks_per_round)
            .finish_non_exhaustive()
    }
}

impl<P: MeasurementProvider> OracleDriver<P> {
    /// Wraps a provider; each [`Driver::round`] runs
    /// `ticks_per_round` protocol ticks.
    pub fn new(provider: P, ticks_per_round: usize) -> Result<Self, ConfigError> {
        if ticks_per_round == 0 {
            return Err(ConfigError::ZeroTicks);
        }
        Ok(Self {
            provider,
            ticks_per_round,
        })
    }

    /// The wrapped provider.
    pub fn provider(&self) -> &P {
        &self.provider
    }

    /// Consumes the driver and returns the provider.
    pub fn into_provider(self) -> P {
        self.provider
    }
}

impl<P: MeasurementProvider> Driver for OracleDriver<P> {
    fn round(&mut self, session: &mut Session) -> Result<usize, DmfsgdError> {
        session.run(self.ticks_per_round, &mut self.provider)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::SnapshotError;
    use crate::provider::ClassLabelProvider;
    use dmf_datasets::rtt::meridian_like;

    fn small_session(n: usize, k: usize, seed: u64) -> Session {
        Session::builder()
            .nodes(n)
            .k(k)
            .seed(seed)
            .build()
            .expect("valid config")
    }

    fn sign_accuracy(session: &Session, class: &dmf_datasets::ClassMatrix) -> f64 {
        let mut ok = 0usize;
        let mut total = 0usize;
        for (i, j) in class.mask.iter_known() {
            total += 1;
            let predicted = if session.raw_score_unchecked(i, j) >= 0.0 {
                1.0
            } else {
                -1.0
            };
            if Some(predicted) == class.label(i, j) {
                ok += 1;
            }
        }
        ok as f64 / total as f64
    }

    #[test]
    fn batched_remote_applies_are_bit_identical_to_one_at_a_time() {
        let mut batched = small_session(20, 8, 31);
        let mut one_by_one = batched.clone();
        // A schedule whose replies chain: later updates see the
        // coordinates earlier updates in the same batch produced.
        let mut updates = Vec::new();
        for step in 0..30usize {
            let i = step % 20;
            let j = (i + 1 + step % 19) % 20;
            let cj = &one_by_one.nodes()[j].coords;
            updates.push((
                i,
                if step % 3 == 0 { -1.0 } else { 1.0 },
                cj.u.to_vec(),
                cj.v.to_vec(),
            ));
        }
        let mut solo_scores = Vec::new();
        for (i, x, u_j, v_j) in &updates {
            solo_scores.push(crate::coords::dot(&one_by_one.nodes()[*i].coords.u, v_j));
            one_by_one.apply_rtt_remote(*i, *x, u_j, v_j).unwrap();
        }
        let batch: Vec<RemoteRtt<'_>> = updates
            .iter()
            .map(|(i, x, u_j, v_j)| RemoteRtt {
                i: *i,
                x: *x,
                u_j,
                v_j,
            })
            .collect();
        let mut batch_scores = Vec::new();
        batched
            .apply_rtt_remote_batch(&batch, &mut batch_scores)
            .unwrap();
        assert_eq!(batch_scores, solo_scores, "pre-update scores sequence");
        assert_eq!(batched.measurements_used(), one_by_one.measurements_used());
        for i in 0..20 {
            for j in 0..20 {
                if i == j {
                    continue;
                }
                assert_eq!(
                    batched.raw_score(i, j).unwrap(),
                    one_by_one.raw_score(i, j).unwrap(),
                    "({i},{j})"
                );
            }
        }
    }

    #[test]
    fn batched_remote_applies_validate_all_or_nothing() {
        let mut s = small_session(12, 6, 32);
        let before = s.clone();
        let good = vec![0.5; s.config().rank];
        let bad = vec![f64::NAN; s.config().rank];
        let batch = [
            RemoteRtt {
                i: 0,
                x: 1.0,
                u_j: &good,
                v_j: &good,
            },
            RemoteRtt {
                i: 1,
                x: 1.0,
                u_j: &bad,
                v_j: &good,
            },
        ];
        let mut scores = Vec::new();
        let err = s.apply_rtt_remote_batch(&batch, &mut scores).unwrap_err();
        // Same error the per-update entry point produces...
        assert_eq!(
            err,
            before
                .clone()
                .apply_rtt_remote(1, 1.0, &bad, &good)
                .unwrap_err()
        );
        // ...and nothing applied: the good update did not land.
        assert_eq!(s.measurements_used(), before.measurements_used());
        assert_eq!(s.raw_score(0, 1).unwrap(), before.raw_score(0, 1).unwrap());
    }

    #[test]
    fn builder_rejects_each_bad_knob_with_its_variant() {
        let b = || Session::builder().nodes(30);
        assert_eq!(b().rank(0).build().unwrap_err(), ConfigError::ZeroRank);
        assert_eq!(b().k(0).build().unwrap_err(), ConfigError::ZeroK);
        assert_eq!(
            b().eta(0.0).build().unwrap_err(),
            ConfigError::Eta { eta: 0.0 }
        );
        assert_eq!(
            b().eta(1.0).lambda(1.5).build().unwrap_err(),
            ConfigError::Lambda { lambda: 1.5 }
        );
        assert_eq!(
            b().quantity(-3.0).build().unwrap_err(),
            ConfigError::ValueScale { value_scale: -3.0 }
        );
        assert_eq!(
            b().quantity(1.0).loss(Loss::Logistic).build().unwrap_err(),
            ConfigError::QuantityLoss {
                loss: Loss::Logistic
            }
        );
        assert_eq!(
            Session::builder().nodes(5).k(10).build().unwrap_err(),
            ConfigError::TooFewNodes { n: 5, k: 10 }
        );
        assert_eq!(
            b().tau(-1.0).build().unwrap_err(),
            ConfigError::Tau { tau: -1.0 }
        );
    }

    #[test]
    fn builder_matches_legacy_construction_bitwise() {
        // Same seed, same RNG draw order ⇒ identical initial state.
        let session = Session::builder().nodes(40).build().expect("valid");
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let legacy: Vec<DmfsgdNode> = (0..40).map(|i| DmfsgdNode::new(i, 10, &mut rng)).collect();
        let legacy_neighbors = NeighborSets::random(40, 10, &mut rng);
        assert_eq!(session.nodes(), legacy.as_slice());
        assert_eq!(session.neighbors(), &legacy_neighbors);
    }

    #[test]
    fn training_through_session_learns() {
        let d = meridian_like(60, 1);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut session = small_session(60, 10, 0);
        let applied = session.run(60 * 200, &mut provider).expect("run");
        assert_eq!(applied, session.measurements_used());
        let acc = sign_accuracy(&session, &cm);
        assert!(acc > 0.75, "accuracy {acc} too low after training");
    }

    #[test]
    fn oracle_driver_advances_in_rounds() {
        let d = meridian_like(40, 2);
        let cm = d.classify(d.median());
        let mut session = small_session(40, 10, 2);
        let mut driver =
            OracleDriver::new(ClassLabelProvider::new(cm), 40 * 50).expect("nonzero ticks");
        let applied = session.drive(&mut driver, 4).expect("drive");
        assert_eq!(applied, session.measurements_used());
        assert!(applied > 0);
        assert_eq!(
            OracleDriver::<ClassLabelProvider>::new(
                ClassLabelProvider::new(meridian_like(4, 0).classify(1.0)),
                0
            )
            .unwrap_err(),
            ConfigError::ZeroTicks
        );
    }

    #[test]
    fn provider_mismatch_is_typed() {
        let d = meridian_like(30, 3);
        let mut provider = ClassLabelProvider::new(d.classify(d.median()));
        let mut session = small_session(40, 10, 3);
        assert_eq!(
            session.run(10, &mut provider).unwrap_err(),
            DmfsgdError::Membership(MembershipError::ProviderMismatch {
                provider: 30,
                session: 40
            })
        );
    }

    #[test]
    fn queries_validate_membership() {
        let session = small_session(20, 5, 4);
        assert!(session.predict(0, 1).is_ok());
        assert_eq!(
            session.raw_score(3, 3).unwrap_err(),
            DmfsgdError::Membership(MembershipError::SelfPair { id: 3 })
        );
        assert_eq!(
            session.predict(0, 99).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { id: 99, slots: 20 })
        );
        let class = session.predict_class(0, 1).expect("alive pair");
        assert!(class == 1.0 || class == -1.0);
    }

    #[test]
    fn rank_neighbors_orders_by_score() {
        let d = meridian_like(30, 5);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm);
        let mut session = small_session(30, 8, 5);
        session.run(30 * 100, &mut provider).expect("run");
        let ranked = session.rank_neighbors(0, 8).expect("alive");
        assert_eq!(ranked.len(), 8);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1, "ranking must be descending");
        }
        for &(j, score) in &ranked {
            assert!(session.neighbors().contains(0, j));
            assert_eq!(score, session.raw_score(0, j).expect("alive pair"));
        }
        let top3 = session.rank_neighbors(0, 3).expect("alive");
        assert_eq!(&ranked[..3], top3.as_slice());
    }

    #[test]
    fn rank_neighbors_into_reuses_the_buffer_and_matches() {
        let d = meridian_like(30, 5);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm);
        let mut session = small_session(30, 8, 5);
        session.run(30 * 100, &mut provider).expect("run");
        let mut buf = Vec::new();
        for i in 0..30 {
            session
                .rank_neighbors_into(i, 5, &mut buf)
                .expect("alive node");
            assert_eq!(buf, session.rank_neighbors(i, 5).expect("alive node"));
        }
        // Errors clear the buffer instead of leaving stale entries.
        assert!(session.rank_neighbors_into(99, 5, &mut buf).is_err());
        assert!(buf.is_empty());
    }

    #[test]
    fn apply_rtt_remote_matches_local_application() {
        // Two sessions from the same seed; one applies (i, j) locally,
        // the other through the remote-reply entry point fed j's
        // coordinates by hand. Must be bit-identical.
        let mut local = small_session(20, 5, 11);
        let mut remote = small_session(20, 5, 11);
        for (i, j, x) in [(0, 3, 1.0), (4, 9, -1.0), (0, 7, -1.0)] {
            local
                .apply_measurement(i, j, x, Metric::Rtt)
                .expect("local");
            let (u_j, v_j) = remote.nodes()[j].rtt_reply();
            remote
                .apply_rtt_remote(i, x, &u_j, &v_j)
                .expect("remote reply");
        }
        assert_eq!(local.nodes(), remote.nodes());
        assert_eq!(local.measurements_used(), remote.measurements_used());
    }

    #[test]
    fn apply_rtt_remote_rejects_hostile_replies() {
        let mut session = small_session(20, 5, 12);
        let good = vec![0.5; 10];
        assert!(matches!(
            session
                .apply_rtt_remote(0, 1.0, &[0.5; 3], &good)
                .unwrap_err(),
            DmfsgdError::Import(_)
        ));
        assert!(matches!(
            session
                .apply_rtt_remote(0, f64::NAN, &good, &good)
                .unwrap_err(),
            DmfsgdError::Import(_)
        ));
        let mut bad = good.clone();
        bad[4] = f64::INFINITY;
        assert!(matches!(
            session.apply_rtt_remote(0, 1.0, &good, &bad).unwrap_err(),
            DmfsgdError::Import(_)
        ));
        assert_eq!(
            session.apply_rtt_remote(99, 1.0, &good, &good).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { id: 99, slots: 20 })
        );
        // Nothing was applied by any rejected call.
        assert_eq!(session.measurements_used(), 0);
        assert_eq!(session.nodes(), small_session(20, 5, 12).nodes());
    }

    #[test]
    fn join_and_leave_maintain_invariants() {
        let mut session = small_session(20, 5, 6);
        session.leave(7).expect("first leave");
        assert!(!session.is_alive(7));
        assert_eq!(session.num_alive(), 19);
        // No alive row may reference the departed node.
        for &i in session.alive() {
            assert!(
                !session.neighbors().contains(i, 7),
                "row {i} still references the departed node"
            );
            let row = session.neighbors().neighbors(i);
            assert_eq!(row.len(), 5);
            let mut sorted = row.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 5, "row {i} lost distinctness");
            assert!(row.iter().all(|&j| session.is_alive(j)));
        }
        // Duplicate leave is a typed error.
        assert_eq!(
            session.leave(7).unwrap_err(),
            DmfsgdError::Membership(MembershipError::Departed { id: 7 })
        );
        assert_eq!(
            session.leave(99).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { id: 99, slots: 20 })
        );
        // Rejoin reuses the departed slot.
        let id = session.join().expect("rejoin");
        assert_eq!(id, 7);
        assert!(session.is_alive(7));
        assert_eq!(session.num_alive(), 20);
        let row = session.neighbors().neighbors(7);
        assert_eq!(row.len(), 5);
        assert!(row.iter().all(|&j| session.is_alive(j) && j != 7));
        // A join with no free slot appends.
        let id = session.join().expect("grow");
        assert_eq!(id, 20);
        assert_eq!(session.len(), 21);
    }

    #[test]
    fn leave_refuses_to_starve_neighbor_sets() {
        let mut session = small_session(7, 5, 7);
        // 7 alive, k=5: leaving one gives 6 = k+1 (legal); leaving
        // another would give 5 < k+1.
        session.leave(0).expect("down to k+1");
        assert_eq!(
            session.leave(1).unwrap_err(),
            DmfsgdError::Membership(MembershipError::TooFewAlive { alive: 5, k: 5 })
        );
    }

    #[test]
    fn training_continues_across_churn() {
        let d = meridian_like(50, 8);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut session = small_session(50, 10, 8);
        session.run(50 * 60, &mut provider).expect("warmup");
        for id in [3, 17, 29] {
            session.leave(id).expect("leave");
        }
        session.run(47 * 40, &mut provider).expect("run while down");
        for _ in 0..3 {
            session.join().expect("rejoin");
        }
        assert_eq!(session.num_alive(), 50);
        session.run(50 * 120, &mut provider).expect("recover");
        let acc = sign_accuracy(&session, &cm);
        assert!(acc > 0.75, "post-churn accuracy {acc}");
    }

    #[test]
    fn run_trace_skips_departed_pairs_and_counts_applied() {
        use dmf_datasets::dynamic::{harvard_like, HarvardConfig};
        let (trace, gt) = harvard_like(&HarvardConfig::new(30, 20_000), 15);
        let tau = gt.median();
        let mut session = small_session(30, 8, 15);
        session.leave(4).expect("leave");
        let touching: usize = trace
            .measurements
            .iter()
            .filter(|m| m.from == 4 || m.to == 4)
            .count();
        assert!(touching > 0, "trace must exercise the departed node");
        let applied = session.run_trace(&trace, tau).expect("replay under churn");
        assert_eq!(applied, trace.len() - touching);
        assert_eq!(session.measurements_used(), applied);
        // A trace whose ids exceed the declared population is still a
        // hard error, not a skip.
        let mut bad = trace.clone();
        bad.measurements[0].to = 999;
        assert!(matches!(
            session.run_trace(&bad, tau).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { .. })
        ));
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        let d = meridian_like(40, 9);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm.clone());
        let mut session = small_session(40, 10, 9);
        session.run(40 * 80, &mut provider).expect("warmup");
        session.leave(5).expect("leave");

        let snap = session.snapshot();
        let mut restored = Session::restore(&snap).expect("restore");

        let mut p2 = ClassLabelProvider::new(cm);
        session.run(40 * 40, &mut provider).expect("original");
        restored.run(40 * 40, &mut p2).expect("restored");
        assert_eq!(session.predicted_scores(), restored.predicted_scores());
        assert_eq!(session.measurements_used(), restored.measurements_used());
    }

    #[test]
    fn snapshot_json_roundtrip_and_corruption_detection() {
        let mut session = small_session(15, 4, 10);
        session.leave(3).expect("leave");
        let snap = session.snapshot();
        let json = snap.to_json();
        let back = Snapshot::from_json(&json).expect("parse");
        let restored = Session::restore(&back).expect("restore");
        assert_eq!(restored.predicted_scores(), session.predicted_scores());
        assert!(!restored.is_alive(3));

        assert!(matches!(
            Snapshot::from_json("{ not json"),
            Err(SnapshotError::Parse(_))
        ));
        // Structurally valid JSON, semantically corrupt: alive list
        // referencing a slot that does not exist.
        let tampered = json.replace("\"alive\":[", "\"alive\":[4096,");
        let parsed = Snapshot::from_json(&tampered).expect("still parses");
        assert!(matches!(
            Session::restore(&parsed).unwrap_err(),
            DmfsgdError::Snapshot(SnapshotError::Corrupt(_))
        ));
    }
}
