//! The read side of the session's read/write split: [`CoordView`].
//!
//! A [`Session`] is a mutable object — training rounds, membership
//! changes and snapshot restores all take `&mut self` — which is the
//! right shape for correctness but the wrong shape for *serving*: a
//! prediction service wants thousands of concurrent readers answering
//! "which class is path (i, j)?" while a training round is in flight.
//!
//! [`Session::publish`] solves this by snapshotting everything the
//! incremental queries need — coordinates, neighbor rows, membership
//! flags and the prediction mode — into an immutable [`CoordView`].
//! The view answers [`predict`](CoordView::predict) /
//! [`predict_class`](CoordView::predict_class) /
//! [`rank_neighbors`](CoordView::rank_neighbors) bit-identically to
//! the live session it was published from, and it keeps answering
//! (against the published state) while the session trains.
//!
//! Republishing is incremental: a DMFSGD measurement touches exactly
//! one node's coordinates, so a writer that applies an update and then
//! calls [`CoordView::republish_node`] pays `O(r)` — not `O(n·r)` — to
//! keep the published view current. `dmf-service` builds its shard
//! store out of exactly this pattern: each shard owns a `Session`
//! behind a write lock and a `CoordView` behind a read/write lock,
//! republishing per update, so predict traffic never waits on a
//! training round.

use crate::config::PredictionMode;
use crate::coords::Coordinates;
use crate::error::{DmfsgdError, MembershipError, NodeId};
use crate::session::{rank_scored, Session};
use dmf_simnet::NeighborSets;

/// An immutable, query-ready snapshot of a [`Session`]'s coordinates.
///
/// Published by [`Session::publish`]; refreshed wholesale with
/// [`republish_from`](CoordView::republish_from) or one node at a
/// time with [`republish_node`](CoordView::republish_node). All query
/// methods mirror the session's incremental queries (same membership
/// checks, same tie-breaks) and are bit-identical to them as of the
/// last republish.
#[derive(Clone, Debug, PartialEq)]
pub struct CoordView {
    rank: usize,
    mode: PredictionMode,
    coords: Vec<Coordinates>,
    alive: Vec<bool>,
    neighbors: NeighborSets,
}

impl CoordView {
    pub(crate) fn capture(session: &Session) -> Self {
        Self {
            rank: session.config().rank,
            mode: session.config().mode,
            coords: session.nodes().iter().map(|n| n.coords.clone()).collect(),
            alive: (0..session.len()).map(|i| session.is_alive(i)).collect(),
            neighbors: session.neighbors().clone(),
        }
    }

    /// Number of node slots covered by the view.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// True when the view covers no slots.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }

    /// Coordinate rank `r` of the published population.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Prediction mode of the publishing session (decides how
    /// [`predict`](Self::predict) scales raw scores).
    pub fn mode(&self) -> PredictionMode {
        self.mode
    }

    /// True when `id` named an alive member at publish time.
    pub fn is_alive(&self, id: NodeId) -> bool {
        self.alive.get(id).copied().unwrap_or(false)
    }

    /// The published coordinates of slot `id` (`None` out of range).
    pub fn coords(&self, id: NodeId) -> Option<&Coordinates> {
        self.coords.get(id)
    }

    /// The neighbor rows as of publish time.
    pub fn neighbors(&self) -> &NeighborSets {
        &self.neighbors
    }

    fn check_alive(&self, id: NodeId) -> Result<(), MembershipError> {
        match self.alive.get(id) {
            None => Err(MembershipError::UnknownNode {
                id,
                slots: self.coords.len(),
            }),
            Some(false) => Err(MembershipError::Departed { id }),
            Some(true) => Ok(()),
        }
    }

    fn check_pair(&self, i: NodeId, j: NodeId) -> Result<(), MembershipError> {
        self.check_alive(i)?;
        self.check_alive(j)?;
        if i == j {
            return Err(MembershipError::SelfPair { id: i });
        }
        Ok(())
    }

    /// Raw predictor output `u_i · v_j` over the published coordinates.
    pub fn raw_score(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        self.check_pair(i, j)?;
        Ok(self.coords[i].predict_to(&self.coords[j]))
    }

    /// Predicted measure in natural units (see [`Session::predict`]).
    pub fn predict(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let raw = self.raw_score(i, j)?;
        Ok(match self.mode {
            PredictionMode::Class => raw,
            PredictionMode::Quantity { value_scale } => raw * value_scale,
        })
    }

    /// Predicted class of the path `i → j`: `+1.0` when the raw score
    /// is non-negative, `-1.0` otherwise.
    pub fn predict_class(&self, i: NodeId, j: NodeId) -> Result<f64, DmfsgdError> {
        let raw = self.raw_score(i, j)?;
        Ok(if raw >= 0.0 { 1.0 } else { -1.0 })
    }

    /// Published-state [`Session::rank_neighbors`]: node `i`'s
    /// neighbors ranked by score (descending, id-ascending ties),
    /// truncated to `top_k`.
    pub fn rank_neighbors(
        &self,
        i: NodeId,
        top_k: usize,
    ) -> Result<Vec<(NodeId, f64)>, DmfsgdError> {
        let mut out = Vec::new();
        self.rank_neighbors_into(i, top_k, &mut out)?;
        Ok(out)
    }

    /// [`rank_neighbors`](Self::rank_neighbors) into a caller-owned
    /// buffer (cleared first), reusing its allocation across queries —
    /// the hot serving path. On error the buffer is left cleared.
    pub fn rank_neighbors_into(
        &self,
        i: NodeId,
        top_k: usize,
        out: &mut Vec<(NodeId, f64)>,
    ) -> Result<(), DmfsgdError> {
        out.clear();
        self.check_alive(i)?;
        out.extend(
            self.neighbors
                .neighbors(i)
                .iter()
                .map(|&j| (j, self.coords[i].predict_to(&self.coords[j]))),
        );
        rank_scored(out, top_k);
        Ok(())
    }

    /// Refreshes one node's published coordinates from `session` —
    /// `O(r)`, the per-update write half of the read/write split.
    ///
    /// Fails (leaving the view untouched) when `id` is outside the
    /// published slot range or the session's rank changed; republish
    /// wholesale with [`republish_from`](Self::republish_from) after
    /// structural changes (joins growing the slot space, restores).
    pub fn republish_node(&mut self, session: &Session, id: NodeId) -> Result<(), DmfsgdError> {
        let Some(node) = session.node(id) else {
            return Err(MembershipError::UnknownNode {
                id,
                slots: session.len(),
            }
            .into());
        };
        if id >= self.coords.len() || node.coords.rank() != self.rank {
            return Err(DmfsgdError::Import(format!(
                "republish of node {id} does not fit the published view \
                 ({} slots, rank {})",
                self.coords.len(),
                self.rank
            )));
        }
        self.coords[id] = node.coords.clone();
        self.alive[id] = session.is_alive(id);
        Ok(())
    }

    /// Batched [`republish_node`](Self::republish_node): refreshes
    /// every id in `ids` from `session` in one call, amortizing the
    /// per-update publication overhead when a worker drains a batch
    /// of updates before republishing.
    ///
    /// Validation is all-or-nothing: every id is checked before any
    /// slot is written, so a failed batch leaves the view untouched
    /// (the same contract as the single-node form). Duplicate ids are
    /// fine — later entries simply rewrite the slot.
    pub fn republish_nodes(
        &mut self,
        session: &Session,
        ids: &[NodeId],
    ) -> Result<(), DmfsgdError> {
        for &id in ids {
            if session.node(id).is_none() {
                return Err(MembershipError::UnknownNode {
                    id,
                    slots: session.len(),
                }
                .into());
            }
            let rank_ok = session.node(id).expect("checked").coords.rank() == self.rank;
            if id >= self.coords.len() || !rank_ok {
                return Err(DmfsgdError::Import(format!(
                    "republish of node {id} does not fit the published view \
                     ({} slots, rank {})",
                    self.coords.len(),
                    self.rank
                )));
            }
        }
        for &id in ids {
            self.coords[id] = session.node(id).expect("checked").coords.clone();
            self.alive[id] = session.is_alive(id);
        }
        Ok(())
    }

    /// Re-captures the whole view from `session` (coordinates,
    /// membership and neighbor rows), reusing allocations where slot
    /// counts match. Equivalent to `*self = session.publish()`.
    pub fn republish_from(&mut self, session: &Session) {
        self.rank = session.config().rank;
        self.mode = session.config().mode;
        self.coords.clear();
        self.coords
            .extend(session.nodes().iter().map(|n| n.coords.clone()));
        self.alive.clear();
        self.alive
            .extend((0..session.len()).map(|i| session.is_alive(i)));
        self.neighbors = session.neighbors().clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provider::ClassLabelProvider;
    use dmf_datasets::rtt::meridian_like;

    fn trained(n: usize, seed: u64, ticks: usize) -> (Session, ClassLabelProvider) {
        let d = meridian_like(n, seed);
        let cm = d.classify(d.median());
        let mut provider = ClassLabelProvider::new(cm);
        let mut session = Session::builder()
            .nodes(n)
            .seed(seed)
            .build()
            .expect("valid config");
        session.run(ticks, &mut provider).expect("run");
        (session, provider)
    }

    #[test]
    fn view_answers_bit_identically_to_the_session() {
        let (session, _) = trained(40, 1, 4_000);
        let view = session.publish();
        assert_eq!(view.len(), 40);
        for i in 0..40 {
            for j in 0..40 {
                if i == j {
                    continue;
                }
                assert_eq!(
                    view.raw_score(i, j).unwrap(),
                    session.raw_score(i, j).unwrap()
                );
                assert_eq!(
                    view.predict_class(i, j).unwrap(),
                    session.predict_class(i, j).unwrap()
                );
            }
            assert_eq!(
                view.rank_neighbors(i, 10).unwrap(),
                session.rank_neighbors(i, 10).unwrap()
            );
        }
    }

    #[test]
    fn view_is_stable_while_the_session_trains() {
        let (mut session, mut provider) = trained(30, 2, 1_000);
        let view = session.publish();
        let before = view.raw_score(0, 1).unwrap();
        session.run(2_000, &mut provider).expect("train more");
        // The session moved; the published view did not.
        assert_ne!(session.raw_score(0, 1).unwrap(), before);
        assert_eq!(view.raw_score(0, 1).unwrap(), before);
    }

    #[test]
    fn republish_node_tracks_exactly_one_slot() {
        let (mut session, _) = trained(25, 3, 500);
        let mut view = session.publish();
        let u_1 = session.node(1).unwrap().coords.u.clone();
        session
            .apply_rtt_remote(0, 1.0, &u_1.to_vec(), &u_1.to_vec())
            .expect("apply");
        assert_ne!(
            view.raw_score(0, 2).unwrap(),
            session.raw_score(0, 2).unwrap()
        );
        view.republish_node(&session, 0).expect("republish");
        for j in 1..25 {
            assert_eq!(
                view.raw_score(0, j).unwrap(),
                session.raw_score(0, j).unwrap()
            );
        }
        assert!(matches!(
            view.republish_node(&session, 999).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { .. })
        ));
    }

    #[test]
    fn republish_nodes_batches_without_changing_semantics() {
        let (mut session, _) = trained(25, 4, 500);
        let mut batched = session.publish();
        let mut one_by_one = batched.clone();
        for step in 0..20usize {
            let i = step % 25;
            let j = (i + 1 + step % 24) % 25;
            session
                .apply_measurement(i, j, 1.0, dmf_datasets::Metric::Rtt)
                .expect("apply");
        }
        let touched: Vec<usize> = (0..20).map(|s| s % 25).collect();
        batched
            .republish_nodes(&session, &touched)
            .expect("batched republish");
        for &id in &touched {
            one_by_one.republish_node(&session, id).expect("republish");
        }
        assert_eq!(batched, one_by_one);
        // All-or-nothing: a bad id leaves the view untouched.
        let before = batched.clone();
        assert!(matches!(
            batched.republish_nodes(&session, &[0, 999]).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { .. })
        ));
        assert_eq!(batched, before);
    }

    #[test]
    fn republish_from_follows_membership_changes() {
        let (mut session, _) = trained(25, 4, 500);
        let mut view = session.publish();
        session.leave(5).expect("leave");
        // Stale view still serves the departed node's last coordinates.
        assert!(view.raw_score(5, 1).is_ok());
        view.republish_from(&session);
        assert!(matches!(
            view.raw_score(5, 1).unwrap_err(),
            DmfsgdError::Membership(MembershipError::Departed { id: 5 })
        ));
        let grown = session.join().expect("rejoin");
        view.republish_from(&session);
        assert!(view.is_alive(grown));
    }

    #[test]
    fn view_checks_membership_like_the_session() {
        let (session, _) = trained(20, 5, 100);
        let view = session.publish();
        assert_eq!(
            view.raw_score(3, 3).unwrap_err(),
            DmfsgdError::Membership(MembershipError::SelfPair { id: 3 })
        );
        assert_eq!(
            view.predict(0, 99).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { id: 99, slots: 20 })
        );
        assert!(matches!(
            view.rank_neighbors(99, 5).unwrap_err(),
            DmfsgdError::Membership(MembershipError::UnknownNode { .. })
        ));
    }
}
