//! Loss functions and their gradients (paper §4.1 and §5.2.3).
//!
//! For classification the reference value `x` is ±1 and the prediction
//! `x̂ = u · vᵀ` is real-valued; hinge and logistic penalize
//! `x·x̂ < 1` and are insensitive to the magnitude of `x̂` once the
//! sign is right. L2 is used for quantity-based (regression)
//! prediction, the paper's §6.4 comparator.
//!
//! All gradients share the form `∂l/∂u = g(x, x̂) · v` and
//! `∂l/∂v = g(x, x̂) · u` for a scalar *gradient factor* `g`; the
//! update rules only ever need `g`:
//!
//! * L2 (eqs. 18–19, factor 2 dropped as in the paper):
//!   `g = −(x − x̂)`
//! * hinge (eqs. 14–15, subgradient): `g = −x` if `1 − x·x̂ > 0`,
//!   else `0`
//! * logistic (eqs. 16–17): `g = −x / (1 + e^{x·x̂})`

use serde::{Deserialize, Serialize};

/// A loss function `l(x, x̂)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Loss {
    /// Square loss `(x − x̂)²` — quantity (regression) prediction.
    L2,
    /// Hinge loss `max(0, 1 − x·x̂)` — classification.
    Hinge,
    /// Logistic loss `ln(1 + e^{−x·x̂})` — classification (the paper's
    /// default, outperforming hinge in most cases).
    Logistic,
}

impl Loss {
    /// The loss value `l(x, x̂)`.
    pub fn value(self, x: f64, xhat: f64) -> f64 {
        match self {
            Loss::L2 => (x - xhat) * (x - xhat),
            Loss::Hinge => (1.0 - x * xhat).max(0.0),
            Loss::Logistic => {
                // ln(1 + e^{-m}) computed stably for large |m|.
                let m = x * xhat;
                if m > 35.0 {
                    (-m).exp()
                } else if m < -35.0 {
                    -m
                } else {
                    (1.0 + (-m).exp()).ln()
                }
            }
        }
    }

    /// The scalar gradient factor `g` with `∂l/∂u = g·v`, `∂l/∂v = g·u`.
    pub fn gradient_factor(self, x: f64, xhat: f64) -> f64 {
        match self {
            Loss::L2 => -(x - xhat),
            Loss::Hinge => {
                if 1.0 - x * xhat > 0.0 {
                    -x
                } else {
                    0.0
                }
            }
            Loss::Logistic => {
                let m = x * xhat;
                if m > 35.0 {
                    // e^{m} overflows; factor ≈ -x·e^{-m} ≈ 0.
                    -x * (-m).exp()
                } else {
                    -x / (1.0 + m.exp())
                }
            }
        }
    }

    /// True for the classification losses (hinge, logistic).
    pub fn is_classification(self) -> bool {
        !matches!(self, Loss::L2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference check of the gradient factor: treat x̂ as the
    /// free variable (chain rule gives the u/v gradients).
    fn finite_diff(loss: Loss, x: f64, xhat: f64) -> f64 {
        let h = 1e-7;
        (loss.value(x, xhat + h) - loss.value(x, xhat - h)) / (2.0 * h)
    }

    #[test]
    fn l2_values() {
        assert_eq!(Loss::L2.value(1.0, 1.0), 0.0);
        assert_eq!(Loss::L2.value(1.0, -1.0), 4.0);
        assert_eq!(Loss::L2.value(3.0, 1.0), 4.0);
    }

    #[test]
    fn hinge_values() {
        assert_eq!(Loss::Hinge.value(1.0, 2.0), 0.0); // margin satisfied
        assert_eq!(Loss::Hinge.value(1.0, 0.5), 0.5);
        assert_eq!(Loss::Hinge.value(-1.0, 1.0), 2.0);
        assert_eq!(Loss::Hinge.value(1.0, 1.0), 0.0);
    }

    #[test]
    fn logistic_values() {
        assert!((Loss::Logistic.value(1.0, 0.0) - (2.0f64).ln()).abs() < 1e-12);
        // Correct confident prediction → tiny loss.
        assert!(Loss::Logistic.value(1.0, 10.0) < 1e-4);
        // Wrong confident prediction → ≈ linear loss.
        assert!((Loss::Logistic.value(1.0, -10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn logistic_extreme_margins_stable() {
        assert!(Loss::Logistic.value(1.0, 100.0).is_finite());
        assert!(Loss::Logistic.value(-1.0, 100.0).is_finite());
        assert!(Loss::Logistic.gradient_factor(1.0, 100.0).abs() < 1e-10);
        assert!((Loss::Logistic.gradient_factor(-1.0, 100.0) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn gradients_match_finite_differences() {
        // Skip the hinge kink at x·x̂ = 1.
        let cases = [
            (Loss::L2, 1.0, 0.3),
            (Loss::L2, -1.0, 2.0),
            (Loss::L2, 5.0, 4.0),
            (Loss::Hinge, 1.0, 0.3),
            (Loss::Hinge, -1.0, 0.5),
            (Loss::Hinge, 1.0, 2.0),
            (Loss::Logistic, 1.0, 0.0),
            (Loss::Logistic, -1.0, 1.3),
            (Loss::Logistic, 1.0, -2.0),
        ];
        for (loss, x, xhat) in cases {
            let analytic = loss.gradient_factor(x, xhat);
            let mut numeric = finite_diff(loss, x, xhat);
            // The paper drops the factor 2 from the L2 derivative; the
            // finite difference of (x−x̂)² gives the factor-2 version.
            if loss == Loss::L2 {
                numeric /= 2.0;
            }
            assert!(
                (analytic - numeric).abs() < 1e-5,
                "{loss:?} at ({x}, {xhat}): analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn hinge_gradient_zero_when_margin_met() {
        assert_eq!(Loss::Hinge.gradient_factor(1.0, 1.5), 0.0);
        assert_eq!(Loss::Hinge.gradient_factor(-1.0, -1.0), 0.0);
        assert_eq!(Loss::Hinge.gradient_factor(1.0, 0.5), -1.0);
        assert_eq!(Loss::Hinge.gradient_factor(-1.0, 0.5), 1.0);
    }

    #[test]
    fn classification_losses_push_toward_correct_sign() {
        // For x = +1 and a wrong prediction, the factor must be
        // negative so that u moves along +v (increasing x̂).
        for loss in [Loss::Hinge, Loss::Logistic] {
            assert!(loss.gradient_factor(1.0, -0.5) < 0.0);
            assert!(loss.gradient_factor(-1.0, 0.5) > 0.0);
        }
    }

    #[test]
    fn is_classification_flags() {
        assert!(!Loss::L2.is_classification());
        assert!(Loss::Hinge.is_classification());
        assert!(Loss::Logistic.is_classification());
    }
}
