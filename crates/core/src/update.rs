//! The SGD update rule (paper eqs. 9, 10, 12, 13).
//!
//! All four published update rules are instances of one step: with
//! `x̂ = ⟨updated, fixed⟩` and gradient factor `g = g(x, x̂)`,
//!
//! ```text
//! updated ← (1 − ηλ)·updated − η·g·fixed
//! ```
//!
//! * eq. 9  — `updated = u_i`, `fixed = v_j` (node i, RTT)
//! * eq. 10 — `updated = v_i`, `fixed = u_j` (node i, RTT; valid
//!   because RTT is symmetric so `x_ij` also constrains `u_j · v_i`)
//! * eq. 12 — `updated = u_i`, `fixed = v_j` (node i, ABW)
//! * eq. 13 — `updated = v_j`, `fixed = u_i` (node j, ABW)

use crate::config::SgdParams;
use crate::coords::dot;
use dmf_linalg::kernels::axpby;

/// Performs one SGD step in place.
///
/// This is the per-measurement hot path — millions of calls per
/// second — so it computes only what the update needs (`x̂` and the
/// gradient factor) via the fused [`dmf_linalg::kernels`]: no loss
/// evaluation, no allocation. Use [`sgd_step_with_loss`] when the
/// pre-step loss value is wanted for monitoring.
#[inline]
pub fn sgd_step(updated: &mut [f64], fixed: &[f64], x: f64, params: &SgdParams) {
    assert_eq!(updated.len(), fixed.len(), "coordinate rank mismatch");
    let xhat = dot(updated, fixed);
    let g = params.loss.gradient_factor(x, xhat);
    let shrink = 1.0 - params.eta * params.lambda;
    // updated[i] ← shrink·updated[i] − (η·g)·fixed[i], exactly the
    // historical elementwise expression.
    axpby(updated, shrink, -(params.eta * g), fixed);
}

/// [`sgd_step`] variant that also returns the loss value *before* the
/// step (handy for monitoring convergence; costs an extra `exp`/`ln`
/// per call, which is why the plain step skips it).
pub fn sgd_step_with_loss(updated: &mut [f64], fixed: &[f64], x: f64, params: &SgdParams) -> f64 {
    assert_eq!(updated.len(), fixed.len(), "coordinate rank mismatch");
    let loss_before = params.loss.value(x, dot(updated, fixed));
    sgd_step(updated, fixed, x, params);
    loss_before
}

/// The regularized objective contribution of one measurement at one
/// node (paper eq. 5): `l(x, x̂) + λ‖w‖²` where `w` is the updated
/// vector. Used by tests to verify descent.
pub fn local_objective(updated: &[f64], fixed: &[f64], x: f64, params: &SgdParams) -> f64 {
    let xhat = dot(updated, fixed);
    params.loss.value(x, xhat) + params.lambda * dot(updated, updated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;

    fn params(loss: Loss) -> SgdParams {
        SgdParams {
            eta: 0.1,
            lambda: 0.1,
            loss,
        }
    }

    #[test]
    fn hand_computed_l2_step() {
        // u = [1, 0], v = [1, 1], x = 3.
        // x̂ = 1, g = -(3-1) = -2, shrink = 0.99.
        // u' = 0.99·[1,0] - 0.1·(-2)·[1,1] = [1.19, 0.2].
        let mut u = vec![1.0, 0.0];
        let loss_before = sgd_step_with_loss(&mut u, &[1.0, 1.0], 3.0, &params(Loss::L2));
        assert!((loss_before - 4.0).abs() < 1e-12);
        assert!((u[0] - 1.19).abs() < 1e-12, "u0={}", u[0]);
        assert!((u[1] - 0.20).abs() < 1e-12, "u1={}", u[1]);
    }

    #[test]
    fn hand_computed_logistic_step() {
        // u = [0.5], v = [1.0], x = -1, x̂ = 0.5.
        // g = -x/(1+e^{x·x̂}) = 1/(1+e^{-0.5}).
        let mut u = vec![0.5];
        sgd_step(&mut u, &[1.0], -1.0, &params(Loss::Logistic));
        let g = 1.0 / (1.0 + (-0.5f64).exp());
        let expected = 0.99 * 0.5 - 0.1 * g * 1.0;
        assert!((u[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn hinge_step_noop_when_margin_met_except_shrinkage() {
        let mut u = vec![2.0, 0.0];
        // x̂ = 2, x = 1 → margin satisfied, only regularization shrinks.
        sgd_step(&mut u, &[1.0, 0.0], 1.0, &params(Loss::Hinge));
        assert!((u[0] - 1.98).abs() < 1e-12);
        assert_eq!(u[1], 0.0);
    }

    #[test]
    fn step_reduces_local_objective_for_small_eta() {
        // Gradient descent property: for a small step the regularized
        // local objective cannot increase (smooth losses).
        for loss in [Loss::L2, Loss::Logistic] {
            let p = SgdParams {
                eta: 0.01,
                lambda: 0.1,
                loss,
            };
            let fixed = vec![0.7, -0.3, 1.2];
            let mut updated = vec![0.4, 0.1, -0.5];
            let before = local_objective(&updated, &fixed, -1.0, &p);
            sgd_step(&mut updated, &fixed, -1.0, &p);
            let after = local_objective(&updated, &fixed, -1.0, &p);
            assert!(
                after <= before + 1e-12,
                "{loss:?}: objective rose {before} → {after}"
            );
        }
    }

    #[test]
    fn repeated_steps_fit_a_single_label() {
        // Repeatedly fitting one observation must drive the prediction
        // to the correct sign.
        let p = params(Loss::Logistic);
        let fixed = vec![0.9, 0.2, 0.4];
        let mut updated = vec![0.1, 0.1, 0.1];
        for _ in 0..200 {
            sgd_step(&mut updated, &fixed, -1.0, &p);
        }
        assert!(
            dot(&updated, &fixed) < 0.0,
            "prediction should have turned negative: {}",
            dot(&updated, &fixed)
        );
    }

    #[test]
    fn regularization_shrinks_norms() {
        // With gradient ≈ 0 (hinge, satisfied margin) the norm decays
        // geometrically by (1-ηλ) per step — the drift control of §6.2.1.
        let p = params(Loss::Hinge);
        let fixed = vec![1.0];
        let mut updated = vec![5.0];
        for _ in 0..10 {
            sgd_step(&mut updated, &fixed, 1.0, &p);
        }
        let expected = 5.0 * 0.99f64.powi(10);
        assert!((updated[0] - expected).abs() < 1e-9);
    }

    #[test]
    fn returns_pre_step_loss() {
        let p = params(Loss::Hinge);
        let mut updated = vec![0.0];
        let loss = sgd_step_with_loss(&mut updated, &[1.0], 1.0, &p);
        assert_eq!(loss, 1.0); // hinge(1, 0) = 1

        // The plain step must leave the coordinates in the same state.
        let mut plain = vec![0.0];
        sgd_step(&mut plain, &[1.0], 1.0, &p);
        assert_eq!(plain, updated);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn rank_mismatch_panics() {
        let mut u = vec![1.0];
        sgd_step(&mut u, &[1.0, 2.0], 1.0, &params(Loss::L2));
    }
}
