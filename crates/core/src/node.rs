//! Per-node protocol state machines: Algorithm 1 (RTT) and
//! Algorithm 2 (ABW).
//!
//! ```text
//! Algorithm 1 — DMFSGD RTT (i, j)            Algorithm 2 — DMFSGD ABW (i, j)
//! 1: i probes j for the RTT                  1: i probes j for the ABW and sends u_i
//! 2: j sends u_j and v_j to i when probed    2: j infers x_ij when probed
//! 3: i infers x_ij when receiving the reply  3: j sends x_ij and v_j to i
//! 4: i updates u_i and v_i by eqs. 9, 10     4: j updates v_j by eq. 13
//!                                            5: i updates u_i by eq. 12 on reply
//! ```
//!
//! The handlers below are transport-agnostic: `dmf-core::system` calls
//! them directly against an oracle, `dmf-core::runner` drives them over
//! the `dmf-simnet` message network, and `dmf-agent` drives them over
//! real UDP sockets. Note the ABW ordering subtlety: node `j` sends its
//! *pre-update* `v_j` (step 3 precedes step 4), so node `i` trains
//! against the same `v_j` that produced `x̂` at `j`.

use crate::config::SgdParams;
use crate::coords::{CoordVec, Coordinates};
use crate::update::sgd_step;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A DMFSGD protocol participant.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DmfsgdNode {
    /// Node identifier.
    pub id: usize,
    /// The node's coordinates `(u_i, v_i)`.
    pub coords: Coordinates,
    /// Number of measurements this node has processed.
    pub updates: usize,
}

impl DmfsgdNode {
    /// Creates a node with random coordinates (uniform `[0, 1)`).
    pub fn new(id: usize, rank: usize, rng: &mut impl Rng) -> Self {
        Self {
            id,
            coords: Coordinates::random(rank, rng),
            updates: 0,
        }
    }

    /// Predicted measure from this node to `other`: `u_i · v_j`.
    pub fn predict_to(&self, other: &DmfsgdNode) -> f64 {
        self.coords.predict_to(&other.coords)
    }

    // ---- Algorithm 1 (RTT, symmetric, sender-inferred) --------------

    /// Step 2 at node `j`: reply to an RTT probe with the local
    /// coordinates. For paper-scale ranks (`r ≤ 16`) the returned
    /// snapshots are inline copies — no allocation.
    pub fn rtt_reply(&self) -> (CoordVec, CoordVec) {
        (self.coords.u.clone(), self.coords.v.clone())
    }

    /// Steps 3–4 at node `i`: having measured `x_ij` and received
    /// `(u_j, v_j)`, update `u_i` by eq. 9 and `v_i` by eq. 10.
    pub fn on_rtt_measurement(&mut self, x_ij: f64, u_j: &[f64], v_j: &[f64], params: &SgdParams) {
        // eq. 9: u_i ← (1−ηλ)u_i − η ∂l(x_ij, u_i·v_j)/∂u_i
        sgd_step(&mut self.coords.u, v_j, x_ij, params);
        // eq. 10: v_i ← (1−ηλ)v_i − η ∂l(x_ij, u_j·v_i)/∂v_i
        // (uses x_ij = x_ji: symmetric RTT).
        sgd_step(&mut self.coords.v, u_j, x_ij, params);
        self.updates += 1;
    }

    // ---- Algorithm 2 (ABW, asymmetric, target-inferred) --------------

    /// Steps 2–4 at the *target* node `j`: infer `x_ij` from the probe,
    /// snapshot `v_j` for the reply (step 3 precedes step 4), then
    /// update `v_j` by eq. 13 using the prober's `u_i`.
    ///
    /// Returns the `v_j` snapshot that must be sent back to node `i`.
    pub fn on_abw_probe(&mut self, x_ij: f64, u_i: &[f64], params: &SgdParams) -> CoordVec {
        let v_snapshot = self.coords.v.clone();
        // eq. 13: v_j ← (1−ηλ)v_j − η ∂l(x_ij, u_i·v_j)/∂v_j
        sgd_step(&mut self.coords.v, u_i, x_ij, params);
        self.updates += 1;
        v_snapshot
    }

    /// Step 5 at the *prober* node `i`: update `u_i` by eq. 12 with the
    /// `(x_ij, v_j)` received from the target.
    pub fn on_abw_reply(&mut self, x_ij: f64, v_j: &[f64], params: &SgdParams) {
        // eq. 12: u_i ← (1−ηλ)u_i − η ∂l(x_ij, u_i·v_j)/∂u_i
        sgd_step(&mut self.coords.u, v_j, x_ij, params);
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Loss;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn params() -> SgdParams {
        SgdParams {
            eta: 0.1,
            lambda: 0.1,
            loss: Loss::Logistic,
        }
    }

    fn two_nodes(rank: usize) -> (DmfsgdNode, DmfsgdNode) {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        (
            DmfsgdNode::new(0, rank, &mut rng),
            DmfsgdNode::new(1, rank, &mut rng),
        )
    }

    #[test]
    fn rtt_measurement_moves_prediction_toward_label() {
        let (mut a, b) = two_nodes(10);
        let (u_b, v_b) = b.rtt_reply();
        let before = a.predict_to(&b);
        for _ in 0..100 {
            a.on_rtt_measurement(-1.0, &u_b, &v_b, &params());
        }
        let after = a.predict_to(&b);
        assert!(after < before, "prediction must decrease toward x = -1");
        assert!(after < 0.0, "sign must flip to the label, got {after}");
        assert_eq!(a.updates, 100);
    }

    #[test]
    fn rtt_updates_both_u_and_v() {
        let (mut a, b) = two_nodes(6);
        let u_before = a.coords.u.clone();
        let v_before = a.coords.v.clone();
        let (u_b, v_b) = b.rtt_reply();
        a.on_rtt_measurement(1.0, &u_b, &v_b, &params());
        assert_ne!(a.coords.u, u_before, "eq. 9 must touch u_i");
        assert_ne!(a.coords.v, v_before, "eq. 10 must touch v_i");
    }

    #[test]
    fn rtt_reply_does_not_mutate_target() {
        let (_, b) = two_nodes(4);
        let before = b.clone();
        let _ = b.rtt_reply();
        assert_eq!(b, before);
    }

    #[test]
    fn abw_probe_returns_pre_update_snapshot() {
        let (a, mut b) = two_nodes(5);
        let v_before = b.coords.v.clone();
        let snapshot = b.on_abw_probe(1.0, &a.coords.u, &params());
        assert_eq!(
            snapshot, v_before,
            "step 3 sends v_j before step 4 updates it"
        );
        assert_ne!(b.coords.v, v_before, "eq. 13 must update v_j");
        assert_eq!(b.updates, 1);
    }

    #[test]
    fn abw_exchange_converges_to_label_sign() {
        let (mut a, mut b) = two_nodes(8);
        for _ in 0..150 {
            // Full Algorithm-2 exchange with x_ij = -1.
            let v_snapshot = b.on_abw_probe(-1.0, &a.coords.u, &params());
            a.on_abw_reply(-1.0, &v_snapshot, &params());
        }
        assert!(
            a.predict_to(&b) < 0.0,
            "u_a · v_b must converge to the negative label, got {}",
            a.predict_to(&b)
        );
    }

    #[test]
    fn abw_reply_only_touches_u() {
        let (mut a, b) = two_nodes(5);
        let v_before = a.coords.v.clone();
        a.on_abw_reply(1.0, &b.coords.v, &params());
        assert_eq!(a.coords.v, v_before, "eq. 12 must not touch v_i");
    }

    #[test]
    fn symmetric_pair_training_converges_both_directions() {
        // Train i→j with Algorithm 1 on x = +1 from both endpoints;
        // both directional predictions should become positive.
        let (mut a, mut b) = two_nodes(10);
        let p = params();
        for _ in 0..100 {
            let (u_b, v_b) = b.rtt_reply();
            a.on_rtt_measurement(1.0, &u_b, &v_b, &p);
            let (u_a, v_a) = a.rtt_reply();
            b.on_rtt_measurement(1.0, &u_a, &v_a, &p);
        }
        assert!(a.predict_to(&b) > 0.0);
        assert!(b.predict_to(&a) > 0.0);
    }
}
