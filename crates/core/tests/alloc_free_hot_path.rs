//! Pins the zero-allocation contract of the training hot path: after
//! warmup, a probe/reply cycle — event-queue traffic, coordinate
//! snapshots, SGD updates — performs **no** heap allocation.
//!
//! Asserted with a counting global allocator (the one place in the
//! workspace that needs `unsafe`: delegating to the system allocator
//! while bumping an atomic).

use dmf_core::runner::{ExchangeFidelity, SimnetRunner};
use dmf_core::{DmfsgdConfig, Session};
use dmf_datasets::rtt::meridian_like;
use dmf_simnet::NetConfig;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

struct CountingAllocator;

// SAFETY: delegates verbatim to the system allocator; the counter has
// no effect on allocation behaviour.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// One test function (not several) so no concurrent test in this
/// binary can allocate while a measured section runs.
#[test]
fn training_hot_paths_allocate_nothing_after_warmup() {
    // --- message-driven runner, fused exchanges (the default) -------
    let d = meridian_like(40, 1);
    let tau = d.median();
    let mut runner =
        SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
            .expect("valid config");
    // Warmup: several simulated seconds populate every queue bucket,
    // heap, slab slot and scratch list to steady-state capacity.
    runner.run_for(30.0).expect("positive duration");
    let before = allocations();
    runner.run_for(60.0).expect("positive duration");
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "fused probe cycles allocated {during} times after warmup"
    );
    assert!(runner.stats().measurements_completed > 1000);

    // --- message-driven runner, full per-message fidelity ------------
    let d = meridian_like(40, 2);
    let tau = d.median();
    let mut runner =
        SimnetRunner::new(d, tau, DmfsgdConfig::paper_defaults(), NetConfig::default())
            .expect("valid config")
            .with_exchange_fidelity(ExchangeFidelity::PerMessage);
    runner.run_for(30.0).expect("positive duration");
    let before = allocations();
    runner.run_for(60.0).expect("positive duration");
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "per-message probe/reply cycles allocated {during} times after warmup \
         (coordinate snapshots must ride inline CoordVecs)"
    );

    // --- oracle-driven system ticks ----------------------------------
    let d = meridian_like(40, 3);
    let class = d.classify(d.median());
    let mut provider = dmf_core::provider::ClassLabelProvider::new(class);
    let mut system = Session::builder().nodes(40).build().expect("valid config");
    system
        .run(2_000, &mut provider)
        .expect("provider covers the session");
    let before = allocations();
    system
        .run(10_000, &mut provider)
        .expect("provider covers the session");
    let during = allocations() - before;
    assert_eq!(
        during, 0,
        "oracle-driven SGD ticks allocated {during} times after warmup"
    );
}
