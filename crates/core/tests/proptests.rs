//! Property-based tests for the DMFSGD update machinery.

use dmf_core::config::SgdParams;
use dmf_core::coords::dot;
use dmf_core::multiclass::OrdinalClassifier;
use dmf_core::provider::ClassLabelProvider;
use dmf_core::update::{local_objective, sgd_step};
use dmf_core::{DmfsgdConfig, Loss, SessionBuilder};
use proptest::prelude::*;

fn coords(rank: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-2.0f64..2.0, rank..=rank)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn loss_values_nonnegative(
        x in prop_oneof![Just(1.0f64), Just(-1.0f64)],
        xhat in -50.0f64..50.0,
    ) {
        for loss in [Loss::L2, Loss::Hinge, Loss::Logistic] {
            prop_assert!(loss.value(x, xhat) >= 0.0);
            prop_assert!(loss.value(x, xhat).is_finite());
            prop_assert!(loss.gradient_factor(x, xhat).is_finite());
        }
    }

    #[test]
    fn gradient_sign_pushes_toward_label(
        x in prop_oneof![Just(1.0f64), Just(-1.0f64)],
        xhat in -5.0f64..5.0,
    ) {
        // For classification losses, g·x ≤ 0: the step −η·g·v moves x̂
        // toward the sign of x (or not at all when the margin is met).
        for loss in [Loss::Hinge, Loss::Logistic] {
            let g = loss.gradient_factor(x, xhat);
            prop_assert!(g * x <= 1e-12, "{loss:?}: g={g} x={x}");
        }
    }

    #[test]
    fn small_step_never_increases_smooth_objective(
        updated in coords(6),
        fixed in coords(6),
        x in prop_oneof![Just(1.0f64), Just(-1.0f64)],
    ) {
        for loss in [Loss::L2, Loss::Logistic] {
            let p = SgdParams { eta: 0.005, lambda: 0.1, loss };
            let mut u = updated.clone();
            let before = local_objective(&u, &fixed, x, &p);
            sgd_step(&mut u, &fixed, x, &p);
            let after = local_objective(&u, &fixed, x, &p);
            prop_assert!(
                after <= before + 1e-9,
                "{loss:?}: {before} → {after}"
            );
        }
    }

    #[test]
    fn repeated_training_fits_the_label(
        mut updated in coords(8),
        fixed in coords(8),
        x in prop_oneof![Just(1.0f64), Just(-1.0f64)],
    ) {
        // Skip degenerate fixed vectors (no gradient direction).
        let norm = dot(&fixed, &fixed);
        prop_assume!(norm > 0.05);
        let p = SgdParams { eta: 0.1, lambda: 0.01, loss: Loss::Logistic };
        for _ in 0..400 {
            sgd_step(&mut updated, &fixed, x, &p);
        }
        let xhat = dot(&updated, &fixed);
        prop_assert!(xhat * x > 0.0, "failed to fit: x={x}, x̂={xhat}");
    }

    #[test]
    fn shrinkage_bounds_coordinate_growth(
        mut updated in coords(5),
        fixed in coords(5),
        x in prop_oneof![Just(1.0f64), Just(-1.0f64)],
    ) {
        // With η=λ=0.1 the norm stays bounded: ‖u‖ ≤ max(‖u₀‖, η‖v‖/(ηλ)).
        let p = SgdParams { eta: 0.1, lambda: 0.1, loss: Loss::Logistic };
        let v_norm = dot(&fixed, &fixed).sqrt();
        let bound = dot(&updated, &updated).sqrt().max(v_norm / 0.1) + 1.0;
        for _ in 0..200 {
            sgd_step(&mut updated, &fixed, x, &p);
            let norm = dot(&updated, &updated).sqrt();
            prop_assert!(norm <= bound, "norm {norm} escaped bound {bound}");
        }
    }

    #[test]
    fn ordinal_classifier_consistent(
        classes in 2usize..8,
        score in -10.0f64..10.0,
    ) {
        let clf = OrdinalClassifier::equally_spaced(classes, Loss::Logistic);
        let predicted = clf.predict_class(score);
        prop_assert!((1..=classes).contains(&predicted));
        // The predicted class is (weakly) the cheapest under the loss
        // among all classes — up to boundary ties.
        let own_loss = clf.loss_value(predicted, score);
        for c in 1..=classes {
            prop_assert!(
                own_loss <= clf.loss_value(c, score) + 1e-9,
                "class {c} cheaper than predicted {predicted} at score {score}"
            );
        }
    }

    #[test]
    fn ordinal_prediction_monotone_in_score(
        classes in 2usize..8,
        s1 in -10.0f64..10.0,
        s2 in -10.0f64..10.0,
    ) {
        let clf = OrdinalClassifier::equally_spaced(classes, Loss::Logistic);
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(clf.predict_class(lo) <= clf.predict_class(hi));
    }

    #[test]
    fn batched_scores_bitwise_match_naive(
        n in 12usize..40,
        rank in 1usize..20,
        seed in 0u64..1_000,
        ticks in 0usize..1_500,
    ) {
        // The batched U·Vᵀ evaluation must equal the per-pair dot path
        // bit for bit, at any training state, inline or spilled rank.
        let d = dmf_datasets::rtt::meridian_like(n, seed);
        let class = d.classify(d.median());
        let mut cfg = DmfsgdConfig::paper_defaults();
        cfg.rank = rank;
        cfg.k = 8.min(n - 1);
        cfg.seed = seed;
        let mut provider = ClassLabelProvider::new(class);
        let mut sys = SessionBuilder::from_config(cfg)
            .nodes(n)
            .build()
            .expect("valid config");
        sys.run(ticks, &mut provider).expect("provider covers the session");
        let batched = sys.predicted_scores();
        let naive = sys.predicted_scores_naive();
        prop_assert_eq!(batched.shape(), naive.shape());
        for ((i, j, b), (_, _, a)) in batched.entries().zip(naive.entries()) {
            prop_assert_eq!(
                b.to_bits(), a.to_bits(),
                "entry ({},{}) differs: batched {} vs naive {}", i, j, b, a
            );
        }
    }

    #[test]
    fn snapshot_restore_run_is_byte_identical_to_uninterrupted_run(
        n in 12usize..36,
        seed in 0u64..1_000,
        warmup in 0usize..800,
        resumed in 1usize..800,
        churn in prop_oneof![Just(false), Just(true)],
    ) {
        // `snapshot → restore → run(k)` must equal an uninterrupted
        // `run(warmup + k)` bit for bit: coordinates, RNG position,
        // membership bookkeeping and counters all survive the JSON
        // detour exactly.
        let d = dmf_datasets::rtt::meridian_like(n, seed);
        let class = d.classify(d.median());
        let k = 6.min(n - 2);
        let build = || {
            dmf_core::Session::builder()
                .nodes(n)
                .k(k)
                .seed(seed)
                .build()
                .expect("valid config")
        };
        let mut interrupted = build();
        let mut uninterrupted = build();
        let mut p1 = ClassLabelProvider::new(class.clone());
        let mut p2 = ClassLabelProvider::new(class);
        interrupted.run(warmup, &mut p1).expect("warmup");
        uninterrupted.run(warmup, &mut p2).expect("warmup");
        if churn && n > k + 2 {
            // Membership state must survive checkpoints too.
            interrupted.leave(n / 2).expect("leave");
            uninterrupted.leave(n / 2).expect("leave");
        }

        // Checkpoint through the JSON wire format, not just memory.
        let json = interrupted.snapshot().to_json();
        let snap = dmf_core::Snapshot::from_json(&json).expect("parse");
        let mut restored = dmf_core::Session::restore(&snap).expect("restore");

        restored.run(resumed, &mut p1).expect("resume");
        uninterrupted.run(resumed, &mut p2).expect("continue");

        prop_assert_eq!(restored.measurements_used(), uninterrupted.measurements_used());
        let a = restored.predicted_scores();
        let b = uninterrupted.predicted_scores();
        prop_assert_eq!(a.shape(), b.shape());
        for ((i, j, x), (_, _, y)) in a.entries().zip(b.entries()) {
            prop_assert_eq!(
                x.to_bits(), y.to_bits(),
                "entry ({},{}) diverged after restore: {} vs {}", i, j, x, y
            );
        }
    }
}
