//! End-to-end SIMD-dispatch determinism: a same-seed simulated run
//! must be **byte-identical** whichever kernel path executes it.
//!
//! The kernel conformance suite (`dmf-linalg`) pins the primitives
//! bitwise; this suite pins the consequence that actually matters for
//! reproducibility — a whole protocol run (timers, probes, losses,
//! SGD updates, snapshot encoding) replays exactly across the scalar
//! reference, the portable unrolled path and the AVX2/AVX-512 paths.
//! Combined
//! with the `DMF_FORCE_SCALAR` environment knob, this is what lets CI
//! compare a scalar leg against the native leg and demand equality.

use dmf_core::runner::SimnetRunner;
use dmf_core::{DmfsgdConfig, Session, SessionBuilder, ShardedSimnetDriver};
use dmf_datasets::rtt::meridian_like;
use dmf_linalg::simd::{self, Dispatch};
use dmf_simnet::{NetConfig, ShardedSimNet};

/// Paths to compare: the portable fallback always, AVX2 and AVX-512
/// when the host has them (CI's scalar leg covers the reverse
/// direction).
fn paths() -> Vec<Dispatch> {
    let mut p = vec![Dispatch::Portable];
    if simd::avx2_available() {
        p.push(Dispatch::Avx2);
    }
    if simd::avx512_available() {
        p.push(Dispatch::Avx512);
    }
    p
}

fn with_path<T>(path: Dispatch, f: impl FnOnce() -> T) -> T {
    simd::set_thread_override(Some(path));
    let out = f();
    simd::set_thread_override(None);
    out
}

/// One small-but-real simulated run: jitter, loss, fused RTT, 40
/// nodes, 30 simulated seconds. Returns every byte of observable
/// state: the snapshot encoding plus the batched score matrix bits.
fn run_simnet(seed: u64) -> (Vec<u8>, Vec<u64>) {
    let dataset = meridian_like(40, seed);
    let config = DmfsgdConfig {
        seed,
        ..DmfsgdConfig::paper_defaults()
    };
    let net = NetConfig {
        loss_probability: 0.05,
        seed,
        ..NetConfig::default()
    };
    let runner = SimnetRunner::new(dataset, 60.0, config, net).unwrap();
    let (mut session, mut driver) = runner.into_parts();
    driver.run_until(&mut session, 30.0).unwrap();
    collect(&session)
}

/// Same-seed scale run through the sharded driver (the 10k/100k code
/// path, exercised here at a size CI can afford).
fn run_sharded(seed: u64) -> (Vec<u8>, Vec<u64>) {
    let config = DmfsgdConfig {
        seed,
        ..DmfsgdConfig::paper_defaults()
    };
    let mut session = SessionBuilder::from_config(config)
        .nodes(48)
        .tau(60.0)
        .build()
        .unwrap();
    let net_cfg = NetConfig {
        seed,
        ..NetConfig::default()
    };
    let net = ShardedSimNet::from_delay_fn(48, 6, net_cfg, |i, j| {
        0.015 + 0.0005 * ((i * 13 + j * 7) % 64) as f64
    });
    let mut driver = ShardedSimnetDriver::new(&session, net).unwrap();
    driver.run_until(&mut session, 30.0).unwrap();
    collect(&session)
}

fn collect(session: &Session) -> (Vec<u8>, Vec<u64>) {
    let snapshot = session.snapshot().to_json();
    let scores: Vec<u64> = session
        .predicted_scores()
        .as_slice()
        .iter()
        .map(|x| x.to_bits())
        .collect();
    (snapshot.into_bytes(), scores)
}

#[test]
fn simnet_run_is_byte_identical_across_dispatch_paths() {
    let runs: Vec<_> = paths()
        .into_iter()
        .map(|p| (p, with_path(p, || run_simnet(17))))
        .collect();
    let (_, reference) = &runs[0];
    for (path, run) in &runs[1..] {
        assert_eq!(
            run.0, reference.0,
            "{path:?}: snapshot bytes diverged from {:?}",
            runs[0].0
        );
        assert_eq!(
            run.1, reference.1,
            "{path:?}: score bits diverged from {:?}",
            runs[0].0
        );
    }
    // And the run is self-reproducible on the same path (guards
    // against accidental global state between runs).
    let again = with_path(runs[0].0, || run_simnet(17));
    assert_eq!(again, runs[0].1);
}

#[test]
fn sharded_scale_run_is_byte_identical_across_dispatch_paths() {
    let runs: Vec<_> = paths()
        .into_iter()
        .map(|p| (p, with_path(p, || run_sharded(23))))
        .collect();
    let (_, reference) = &runs[0];
    for (path, run) in &runs[1..] {
        assert_eq!(run.0, reference.0, "{path:?}: snapshot bytes diverged");
        assert_eq!(run.1, reference.1, "{path:?}: score bits diverged");
    }
}

/// The CI conformance leg's contract: `DMF_FORCE_SCALAR=1` pins the
/// process default to the portable path. (The cached decision is
/// process-wide, so this test only asserts the knob's parsing surface
/// indirectly: forcing the scalar path via the thread override must
/// agree with the reference on a live run — the env-var plumbing
/// itself is covered by `dmf_linalg::simd` unit tests.)
#[test]
fn forced_scalar_equals_reference_on_live_run() {
    let native = run_simnet(29);
    let scalar = with_path(Dispatch::Portable, || run_simnet(29));
    assert_eq!(native, scalar);
}
