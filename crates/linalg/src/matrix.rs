//! Row-major dense `f64` matrix.
//!
//! This is intentionally a small, predictable type rather than a general
//! linear-algebra library: the DMFSGD workloads only ever need dense
//! storage, elementwise maps, transpose, matrix products and column/row
//! views. Bounds are always checked; shapes are validated eagerly so that
//! misuse fails at the call site instead of corrupting an experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows.checked_mul(cols).expect("matrix size overflow")],
        }
    }

    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Builds a matrix by evaluating `f(i, j)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order keeps the inner loop sequential over both
        // operands, which matters for the large Figure-1 matrices.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise map with index access.
    pub fn map_indexed(&self, mut f: impl FnMut(usize, usize, f64) -> f64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| f(i, j, self[(i, j)]))
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm `sqrt(Σ x²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Extracts the leading `rows × cols` submatrix.
    ///
    /// Used to cut the paper's 2255² / 201² Figure-1 matrices out of the
    /// full synthetic datasets.
    pub fn submatrix(&self, rows: usize, cols: usize) -> Matrix {
        assert!(
            rows <= self.rows && cols <= self.cols,
            "submatrix too large"
        );
        Matrix::from_fn(rows, cols, |i, j| self[(i, j)])
    }

    /// Iterates over `(i, j, value)` triples in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(idx, &v)| (idx / cols, idx % cols, v))
    }

    /// Dot product of two equal-length slices (shared helper).
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            let cells: Vec<String> = self.row(i)[..self.cols.min(8)]
                .iter()
                .map(|x| format!("{x:9.3}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert!(!m.is_square());
    }

    #[test]
    fn identity_diagonal() {
        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn frobenius_norm_345() {
        let m = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn submatrix_takes_leading_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(2, 3);
        assert_eq!(s, Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[4.0, 5.0, 6.0]]));
    }

    #[test]
    fn entries_iterate_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let triples: Vec<_> = m.entries().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]
        );
    }

    #[test]
    fn dot_basic() {
        assert_eq!(Matrix::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn map_indexed_sees_coordinates() {
        let m = Matrix::zeros(2, 2).map_indexed(|i, j, _| (i * 10 + j) as f64);
        assert_eq!(m[(1, 1)], 11.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, -2.5], &[0.0, 4.0]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
