//! Row-major dense `f64` matrix.
//!
//! This is intentionally a small, predictable type rather than a general
//! linear-algebra library: the DMFSGD workloads only ever need dense
//! storage, elementwise maps, transpose, matrix products and column/row
//! views. Bounds are always checked; shapes are validated eagerly so that
//! misuse fails at the call site instead of corrupting an experiment.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64` values.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows.checked_mul(cols).expect("matrix size overflow")],
        }
    }

    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 0.0)
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a row-major vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows passed to Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Builds a matrix by evaluating `f(i, j)` for each entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds ({})", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index {j} out of bounds ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        // ikj loop order keeps the inner loop sequential over both
        // operands, which matters for the large Figure-1 matrices.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix product against a transposed right-hand side:
    /// `self * rhsᵀ`, i.e. `out[i][j] = dot(self.row(i), rhs.row(j))`.
    ///
    /// This is the batched form of evaluating all pairwise scores
    /// `u_i · v_j` at once: both operands are iterated row-major (no
    /// strided column walks), and each entry accumulates through the
    /// same lane-split-4 fused-multiply-add chain as
    /// [`crate::kernels::dot`], so every entry is **bitwise identical**
    /// to the per-pair dot it replaces — only much faster, because the
    /// blocked/tiled backend in [`crate::simd`] keeps eight
    /// independent fma chains (AVX2 when the CPU has it, a portable
    /// unrolled fallback otherwise) streaming over `rhsᵀ` rows.
    ///
    /// # Panics
    /// Panics when the column counts (the shared inner dimension)
    /// disagree. [`try_matmul_nt`](Self::try_matmul_nt) is the
    /// non-panicking form for shapes that come from external input.
    pub fn matmul_nt(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_nt_into(rhs, &mut out);
        out
    }

    /// [`matmul_nt`](Self::matmul_nt) writing into an existing matrix,
    /// reusing its allocation. Evaluation loops that materialize the
    /// score matrix repeatedly (convergence tracking, the perf suite)
    /// avoid a large alloc/fault/free cycle per call this way.
    ///
    /// # Panics
    /// Panics when the column counts disagree (see
    /// [`try_matmul_nt_into`](Self::try_matmul_nt_into) for the typed
    /// error). Internal callers that construct both operands keep this
    /// asserting form.
    pub fn matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) {
        if let Err(e) = self.try_matmul_nt_into(rhs, out) {
            panic!("{e}");
        }
    }

    /// Non-panicking [`matmul_nt`](Self::matmul_nt): rejects a shape
    /// mismatch with a typed [`ShapeError`] instead of asserting, for
    /// callers whose operands come from external input (snapshots,
    /// wire data, session queries).
    pub fn try_matmul_nt(&self, rhs: &Matrix) -> Result<Matrix, ShapeError> {
        let mut out = Matrix::zeros(0, 0);
        self.try_matmul_nt_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Non-panicking [`matmul_nt_into`](Self::matmul_nt_into). On
    /// error `out` is left untouched.
    pub fn try_matmul_nt_into(&self, rhs: &Matrix, out: &mut Matrix) -> Result<(), ShapeError> {
        if self.cols != rhs.cols {
            return Err(ShapeError {
                op: "matmul_nt",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let (rows, cols, inner) = (self.rows, rhs.rows, self.cols);
        let mut data = std::mem::take(&mut out.data);
        data.clear();
        data.reserve(rows * cols);
        if inner == 0 {
            data.resize(rows * cols, 0.0);
            *out = Matrix::from_vec(rows, cols, data);
            return Ok(());
        }
        // Pack rhsᵀ once (r × n, contiguous rows of length n) so the
        // hot loop is a pure streaming accumulation; the dispatcher
        // picks the AVX2 or portable tile kernel. The pack goes into a
        // 64-byte-aligned thread-local scratch: the tile kernels are
        // load-bound on rhsᵀ, so its alignment must not be left to the
        // allocator's mood (and the per-call transpose allocation
        // disappears with it).
        crate::simd::with_aligned_scratch(inner * cols, |rhs_t| {
            for (j, row) in rhs.data.chunks_exact(inner).enumerate() {
                for (k, &x) in row.iter().enumerate() {
                    rhs_t[k * cols + j] = x;
                }
            }
            crate::simd::matmul_nt_dispatch(
                &self.data, &rhs.data, rhs_t, rows, inner, cols, &mut data,
            );
        });
        *out = Matrix::from_vec(rows, cols, data);
        Ok(())
    }

    /// Moves the backing storage out (for in-crate buffer reuse),
    /// leaving `self` as the 0×0 matrix.
    pub(crate) fn take_data(&mut self) -> Vec<f64> {
        self.rows = 0;
        self.cols = 0;
        std::mem::take(&mut self.data)
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Elementwise map with index access.
    pub fn map_indexed(&self, mut f: impl FnMut(usize, usize, f64) -> f64) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| f(i, j, self[(i, j)]))
    }

    /// Scales every entry by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Elementwise sum `self + rhs`.
    pub fn add(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Elementwise difference `self - rhs`.
    pub fn sub(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Frobenius norm `sqrt(Σ x²)`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, x| m.max(x.abs()))
    }

    /// Extracts the leading `rows × cols` submatrix.
    ///
    /// Used to cut the paper's 2255² / 201² Figure-1 matrices out of the
    /// full synthetic datasets.
    pub fn submatrix(&self, rows: usize, cols: usize) -> Matrix {
        assert!(
            rows <= self.rows && cols <= self.cols,
            "submatrix too large"
        );
        Matrix::from_fn(rows, cols, |i, j| self[(i, j)])
    }

    /// Iterates over `(i, j, value)` triples in row-major order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let cols = self.cols;
        self.data
            .iter()
            .enumerate()
            .map(move |(idx, &v)| (idx / cols, idx % cols, v))
    }

    /// Dot product of two equal-length slices (shared helper; the
    /// fused-multiply-add chain of [`crate::kernels::dot`]).
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        crate::kernels::dot(a, b)
    }
}

/// A typed shape mismatch from the non-panicking matrix products
/// ([`Matrix::try_matmul_nt`] and friends).
///
/// The [`fmt::Display`] form reproduces the historical assert message
/// (`"matmul_nt shape mismatch: …"`), which the panicking entry points
/// format through — so legacy `#[should_panic(expected = …)]` callers
/// keep working.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeError {
    /// The operation that rejected the shapes (e.g. `"matmul_nt"`).
    pub op: &'static str,
    /// `(rows, cols)` of the left-hand operand.
    pub lhs: (usize, usize),
    /// `(rows, cols)` of the right-hand operand.
    pub rhs: (usize, usize),
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shape mismatch: {}x{} * ({}x{})ᵀ",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl std::error::Error for ShapeError {}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let show = self.rows.min(8);
        for i in 0..show {
            let cells: Vec<String> = self.row(i)[..self.cols.min(8)]
                .iter()
                .map(|x| format!("{x:9.3}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                cells.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert!(!m.is_square());
    }

    #[test]
    fn identity_diagonal() {
        let id = Matrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(id[(i, j)], if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_checks_len() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let m = Matrix::zeros(2, 2);
        let _ = m[(2, 0)];
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.5, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.5, -1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[2.0, 0.0, 1.0], &[1.0, 1.0, 1.0], &[-1.0, 2.0, 0.5]]);
        assert_eq!(a.matmul_nt(&b), a.matmul(&b.transpose()));
        assert_eq!(a.matmul_nt(&b).shape(), (2, 3));
    }

    #[test]
    fn matmul_nt_bitwise_matches_row_dots() {
        let a = Matrix::from_fn(7, 5, |i, j| ((i * 31 + j * 17) as f64 * 0.137).sin());
        let b = Matrix::from_fn(6, 5, |i, j| ((i * 13 + j * 41) as f64 * 0.271).cos());
        let c = a.matmul_nt(&b);
        for i in 0..7 {
            for j in 0..6 {
                assert_eq!(
                    c[(i, j)].to_bits(),
                    Matrix::dot(a.row(i), b.row(j)).to_bits(),
                    "entry ({i},{j}) not bitwise equal"
                );
            }
        }
    }

    #[test]
    fn matmul_nt_into_reuses_buffer_and_matches() {
        let a = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.5);
        let b = Matrix::from_fn(4, 3, |i, j| (i + j) as f64 - 1.5);
        let fresh = a.matmul_nt(&b);
        // Reuse a buffer of the wrong shape and stale contents.
        let mut out = Matrix::filled(2, 9, 7.0);
        a.matmul_nt_into(&b, &mut out);
        assert_eq!(out, fresh);
        // And again into the now-right-shaped buffer.
        a.matmul_nt_into(&b, &mut out);
        assert_eq!(out, fresh);
    }

    #[test]
    #[should_panic(expected = "matmul_nt shape mismatch")]
    fn matmul_nt_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = a.matmul_nt(&b);
    }

    #[test]
    fn try_matmul_nt_returns_typed_shape_error() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let err = a.try_matmul_nt(&b).unwrap_err();
        assert_eq!(
            err,
            ShapeError {
                op: "matmul_nt",
                lhs: (2, 3),
                rhs: (2, 4),
            }
        );
        assert_eq!(err.to_string(), "matmul_nt shape mismatch: 2x3 * (2x4)ᵀ");
        // On error the destination is untouched.
        let mut out = Matrix::filled(1, 1, 42.0);
        assert!(a.try_matmul_nt_into(&b, &mut out).is_err());
        assert_eq!(out, Matrix::filled(1, 1, 42.0));
        // Matching shapes succeed and agree with the panicking form.
        let c = Matrix::from_fn(4, 3, |i, j| (i + 2 * j) as f64 * 0.25);
        assert_eq!(a.try_matmul_nt(&c).unwrap(), a.matmul_nt(&c));
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[0.5, 0.5], &[0.5, 0.5]]);
        assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn frobenius_norm_345() {
        let m = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn submatrix_takes_leading_block() {
        let m = Matrix::from_fn(4, 4, |i, j| (i * 4 + j) as f64);
        let s = m.submatrix(2, 3);
        assert_eq!(s, Matrix::from_rows(&[&[0.0, 1.0, 2.0], &[4.0, 5.0, 6.0]]));
    }

    #[test]
    fn entries_iterate_row_major() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let triples: Vec<_> = m.entries().collect();
        assert_eq!(
            triples,
            vec![(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]
        );
    }

    #[test]
    fn dot_basic() {
        assert_eq!(Matrix::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn map_indexed_sees_coordinates() {
        let m = Matrix::zeros(2, 2).map_indexed(|i, j, _| (i * 10 + j) as f64);
        assert_eq!(m[(1, 1)], 11.0);
    }

    #[test]
    fn serde_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, -2.5], &[0.0, 4.0]]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
