//! Runtime-dispatched SIMD kernels and the lane-split accumulation
//! contract.
//!
//! # The contract (v2, "lane-split-4")
//!
//! Up to PR 5 the [`crate::kernels::dot`] contract was a single
//! sequential fused-multiply-add chain. That chain is inherently
//! serial — each fma waits on the previous one — so it cannot be
//! vectorized without changing the rounding order, and at rank 10 it
//! left the SGD and score-evaluation hot paths latency-bound. This PR
//! re-pins the contract *once, deliberately* (as ROADMAP item 3
//! anticipated) to the **lane-split-4** order, which every dispatch
//! path below reproduces bit for bit:
//!
//! ```text
//! acc[0..4] = 0.0
//! for each full chunk of 4:          // k = 0, 4, 8, …
//!     acc[c] = fma(a[k+c], b[k+c], acc[c])   for c in 0..4
//! combined = (acc[0] + acc[2]) + (acc[1] + acc[3])
//! for each trailing element:         // k = 4·⌊n/4⌋ .. n
//!     combined = fma(a[k], b[k], combined)
//! ```
//!
//! Lane `c` accumulates the elements with index ≡ `c` (mod 4) — which
//! is exactly what one AVX2 `vfmadd231pd` per chunk computes, and the
//! combine order matches the natural 256→128→64-bit horizontal
//! reduction. Because scalar [`f64::mul_add`] is the same
//! correctly-rounded IEEE-754 operation as the hardware `vfmadd`
//! lanes, the scalar reference, the portable unrolled fallback and the
//! AVX2 path are bitwise identical *by construction*; the differential
//! suite in `crates/linalg/tests/kernel_conformance.rs` pins this over
//! adversarial inputs (denormals, ±0.0, NaN/∞, every rank 1..=32,
//! unaligned slices).
//!
//! ## Quantified diff against the v1 (sequential) contract
//!
//! * The result is a different *rounding* of the same exact sum: each
//!   element still participates in exactly one fma, so the error bound
//!   is the usual `O(n·ε·Σ|aᵢbᵢ|)` for both orders and the observed
//!   difference on rank ≤ 32 data is a few ULP.
//! * Signed zeros: the v1 chain initialized with the plain product
//!   `a[0]·b[0]`, so an all-negative-zero-product input could return
//!   `-0.0`. v2 initializes the accumulators with `+0.0`, and
//!   `fma(x, y, +0.0)` returns `+0.0` when `x·y` is `-0.0`; a dot whose
//!   value is zero therefore now returns `+0.0` wherever a sign was
//!   previously possible. `sign()`-based classification is unaffected.
//! * NaN/∞ propagation is unchanged: every element still enters the
//!   accumulation through one fma.
//!
//! [`axpby`](crate::kernels::axpby) is element-independent, so its contract
//! (`y[i] ← fma(beta, y[i], alpha·x[i])`) is **unchanged** — the AVX2
//! path is bitwise-identical to the v1 scalar loop.
//!
//! # Dispatch
//!
//! The path is resolved once per process (and cached): AVX2+FMA when
//! the CPU reports them, the portable fallback otherwise. Two knobs
//! exist for conformance testing:
//!
//! * the `DMF_FORCE_SCALAR=1` environment variable pins the whole
//!   process to the portable path (read once, at first kernel call);
//! * [`set_thread_override`] pins the *current thread* to a path, so a
//!   test can run the same workload on both paths in one process.
//!
//! Because all paths are bitwise identical, dispatch never changes
//! results — the knobs exist so the tests can *prove* that.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// A kernel implementation the dispatcher can select.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Dispatch {
    /// Portable unrolled Rust (no `unsafe`); the only path on
    /// non-x86-64 targets.
    Portable,
    /// Explicit AVX2+FMA intrinsics (x86-64, runtime-detected).
    Avx2,
    /// AVX-512F tiles for `matmul_nt` (x86-64, runtime-detected).
    /// `dot`/`axpby` reuse the AVX2 bodies on this path: their
    /// contract fixes four accumulator lanes, so a 512-bit register
    /// cannot be used without changing the bits — only the
    /// column-tiled matmul, where each 64-bit element carries an
    /// independent output column, gets wider.
    Avx512,
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<Dispatch>> = const { Cell::new(None) };
}

/// Sticky flag: set the first time any thread installs an override and
/// never cleared. While it is `false` (every production run), `active()`
/// skips the thread-local lookup entirely — that lookup is measurable
/// on the rank-10 `dot`/`axpby` hot path, where the kernel itself is
/// only a handful of instructions.
static ANY_OVERRIDE: AtomicBool = AtomicBool::new(false);

/// True when the running CPU supports the AVX2+FMA path (independent
/// of any override).
pub fn avx2_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True when the running CPU also supports the AVX-512F matmul tiles
/// (independent of any override). Implies [`avx2_available`].
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE
            .get_or_init(|| avx2_available() && std::arch::is_x86_feature_detected!("avx512f"))
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[inline]
fn process_default() -> Dispatch {
    static DEFAULT: OnceLock<Dispatch> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let forced_scalar = std::env::var("DMF_FORCE_SCALAR")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if forced_scalar {
            Dispatch::Portable
        } else if avx512_available() {
            Dispatch::Avx512
        } else if avx2_available() {
            Dispatch::Avx2
        } else {
            Dispatch::Portable
        }
    })
}

/// The dispatch path kernel calls on this thread will take: the
/// thread override if one is set, otherwise the cached process default
/// (`DMF_FORCE_SCALAR` / CPU detection). In a process that never
/// installs an override this is one relaxed load plus the cached
/// default — cheap enough to sit in front of a rank-10 kernel.
#[inline]
pub fn active() -> Dispatch {
    if ANY_OVERRIDE.load(Ordering::Relaxed) {
        if let Some(d) = THREAD_OVERRIDE.with(|o| o.get()) {
            return d;
        }
    }
    process_default()
}

/// Forces (or with `None`, un-forces) the dispatch path for the
/// current thread. Test-only in spirit: results are bitwise identical
/// on every path, so this only exists to let conformance and
/// determinism tests exercise both paths in one process.
///
/// # Panics
/// Panics when asked to force [`Dispatch::Avx2`] on a CPU without it.
pub fn set_thread_override(path: Option<Dispatch>) {
    if path == Some(Dispatch::Avx2) {
        assert!(
            avx2_available(),
            "cannot force AVX2 dispatch: CPU lacks AVX2/FMA"
        );
    }
    if path == Some(Dispatch::Avx512) {
        assert!(
            avx512_available(),
            "cannot force AVX-512 dispatch: CPU lacks AVX-512F"
        );
    }
    if path.is_some() {
        ANY_OVERRIDE.store(true, Ordering::Relaxed);
    }
    THREAD_OVERRIDE.with(|o| o.set(path));
}

// ---------------------------------------------------------------------------
// aligned scratch
// ---------------------------------------------------------------------------

#[repr(align(64))]
#[derive(Clone, Copy)]
struct CacheLine(#[allow(dead_code)] [f64; 8]); // only ever read through the `f64` view below

thread_local! {
    static NT_SCRATCH: RefCell<Vec<CacheLine>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with a 64-byte-aligned `f64` scratch slice of length
/// `len`, reused across calls on the same thread (contents are
/// whatever the previous caller left — callers must fully initialize
/// the region they read). Not re-entrant: `f` must not call back into
/// `with_aligned_scratch` — directly or through
/// [`Matrix::matmul_nt_into`](crate::Matrix::matmul_nt_into), which
/// uses it for the `rhsᵀ` pack — or the inner call panics on the
/// `RefCell` borrow. Feed pre-packed operands to
/// [`kernels::matmul_nt_packed_into`](crate::kernels::matmul_nt_packed_into)
/// from inside instead; that entry point takes the scratch as plain
/// slices.
///
/// Alignment is the point, not a nicety: the `matmul_nt` tile kernels
/// stream 32-byte loads from `rhsᵀ` rows, and a `Vec` the allocator
/// happens to place at 8- or 16-mod-64 makes half of those loads
/// straddle cache lines. On the load-port-bound score-evaluation path
/// that was a measured double-digit-percent slowdown that came and
/// went with heap layout; a dedicated aligned buffer makes the fast
/// case deterministic (and drops a per-call transpose allocation).
#[allow(unsafe_code)]
pub fn with_aligned_scratch<T>(len: usize, f: impl FnOnce(&mut [f64]) -> T) -> T {
    NT_SCRATCH.with(|s| {
        let mut buf = s.borrow_mut();
        let lines = len.div_ceil(8).max(1);
        if buf.len() < lines {
            buf.resize(lines, CacheLine([0.0; 8]));
        }
        // SAFETY: `CacheLine` is exactly eight `f64`s (size 64, no
        // padding), so viewing the contiguous allocation as `f64`s is
        // in-bounds, correctly aligned, and fully initialized.
        let slice = unsafe {
            std::slice::from_raw_parts_mut(buf.as_mut_ptr().cast::<f64>(), buf.len() * 8)
        };
        f(&mut slice[..len])
    })
}

// ---------------------------------------------------------------------------
// dot
// ---------------------------------------------------------------------------

/// Straight-line scalar spelling of the lane-split-4 contract — the
/// executable specification the other paths are tested against.
///
/// Lengths must match (checked by the public [`crate::kernels::dot`]).
pub fn dot_reference(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len();
    let chunks = n / 4;
    let mut acc = [0.0f64; 4];
    for k in 0..chunks {
        for c in 0..4 {
            acc[c] = a[4 * k + c].mul_add(b[4 * k + c], acc[c]);
        }
    }
    let mut combined = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for k in 4 * chunks..n {
        combined = a[k].mul_add(b[k], combined);
    }
    combined
}

#[inline(always)]
fn dot_unrolled_body<const R: usize>(a: &[f64], b: &[f64]) -> f64 {
    // R > 0 monomorphizes the dominant ranks (4/8/16): the trip counts
    // become constants and the chunk loop fully unrolls. R == 0 is the
    // runtime-length version of the identical code.
    let n = if R > 0 { R } else { a.len() };
    let chunks = n / 4;
    let mut acc = [0.0f64; 4];
    for k in 0..chunks {
        let ca = &a[4 * k..4 * k + 4];
        let cb = &b[4 * k..4 * k + 4];
        for c in 0..4 {
            acc[c] = ca[c].mul_add(cb[c], acc[c]);
        }
    }
    let mut combined = (acc[0] + acc[2]) + (acc[1] + acc[3]);
    for k in 4 * chunks..n {
        combined = a[k].mul_add(b[k], combined);
    }
    combined
}

/// Portable unrolled fallback for [`crate::kernels::dot`], with
/// rank-monomorphized fast paths for 4/8/10/16 (10 is the paper's
/// default rank, so it is the one the SGD hot path actually takes).
#[inline]
pub fn dot_portable(a: &[f64], b: &[f64]) -> f64 {
    match a.len() {
        4 => dot_unrolled_body::<4>(a, b),
        8 => dot_unrolled_body::<8>(a, b),
        10 => dot_unrolled_body::<10>(a, b),
        16 => dot_unrolled_body::<16>(a, b),
        _ => dot_unrolled_body::<0>(a, b),
    }
}

/// AVX2+FMA path for [`crate::kernels::dot`].
///
/// # Panics
/// Panics when the CPU lacks AVX2/FMA (callers should gate on
/// [`avx2_available`]; the dispatcher does).
#[inline]
#[allow(unsafe_code)]
pub fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
    assert!(avx2_available(), "AVX2 dot on a CPU without AVX2/FMA");
    // SAFETY: the feature check above guarantees the target features
    // the callee is compiled with are present at runtime.
    unsafe { avx2::dot(a, b) }
}

/// Dispatched dot product (lengths already validated by the caller).
#[inline]
#[allow(unsafe_code)]
pub(crate) fn dot_dispatch(a: &[f64], b: &[f64]) -> f64 {
    match active() {
        // Avx512 implies Avx2, and the lane-split-4 contract caps the
        // useful register width at 256 bits here — same body.
        Dispatch::Avx2 | Dispatch::Avx512 => {
            // SAFETY: `active()` only returns Avx2/Avx512 when
            // `avx2_available()` reported the features present.
            unsafe { avx2::dot(a, b) }
        }
        Dispatch::Portable => dot_portable(a, b),
    }
}

// ---------------------------------------------------------------------------
// axpby
// ---------------------------------------------------------------------------

/// Scalar reference for [`crate::kernels::axpby`] — the unchanged v1
/// contract, `y[i] ← fma(beta, y[i], alpha·x[i])`.
pub fn axpby_reference(y: &mut [f64], beta: f64, alpha: f64, x: &[f64]) {
    for i in 0..y.len() {
        y[i] = beta.mul_add(y[i], alpha * x[i]);
    }
}

#[inline(always)]
fn axpby_unrolled_body<const R: usize>(y: &mut [f64], beta: f64, alpha: f64, x: &[f64]) {
    let n = if R > 0 { R } else { y.len() };
    for i in 0..n {
        y[i] = beta.mul_add(y[i], alpha * x[i]);
    }
}

/// Portable fallback for [`crate::kernels::axpby`], with
/// rank-monomorphized fast paths for 4/8/10/16.
#[inline]
pub fn axpby_portable(y: &mut [f64], beta: f64, alpha: f64, x: &[f64]) {
    match y.len() {
        4 => axpby_unrolled_body::<4>(y, beta, alpha, x),
        8 => axpby_unrolled_body::<8>(y, beta, alpha, x),
        10 => axpby_unrolled_body::<10>(y, beta, alpha, x),
        16 => axpby_unrolled_body::<16>(y, beta, alpha, x),
        _ => axpby_unrolled_body::<0>(y, beta, alpha, x),
    }
}

/// AVX2+FMA path for [`crate::kernels::axpby`].
///
/// # Panics
/// Panics when the CPU lacks AVX2/FMA.
#[inline]
#[allow(unsafe_code)]
pub fn axpby_avx2(y: &mut [f64], beta: f64, alpha: f64, x: &[f64]) {
    assert!(avx2_available(), "AVX2 axpby on a CPU without AVX2/FMA");
    // SAFETY: feature check above.
    unsafe { avx2::axpby(y, beta, alpha, x) }
}

/// Dispatched axpby (lengths already validated by the caller).
#[inline]
#[allow(unsafe_code)]
pub(crate) fn axpby_dispatch(y: &mut [f64], beta: f64, alpha: f64, x: &[f64]) {
    match active() {
        Dispatch::Avx2 | Dispatch::Avx512 => {
            // SAFETY: `active()` implies `avx2_available()`.
            unsafe { avx2::axpby(y, beta, alpha, x) }
        }
        Dispatch::Portable => axpby_portable(y, beta, alpha, x),
    }
}

// ---------------------------------------------------------------------------
// matmul_nt
// ---------------------------------------------------------------------------

/// Per-entry scalar reference for `matmul_nt`: `out[i][j]` is exactly
/// [`dot_reference`]`(lhs.row(i), rhs.row(j))`. Quadratic and slow —
/// it exists as the conformance oracle.
pub fn matmul_nt_reference(
    lhs: &[f64],
    rhs: &[f64],
    rows: usize,
    inner: usize,
    cols: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(rows * cols);
    for i in 0..rows {
        let a = &lhs[i * inner..(i + 1) * inner];
        for j in 0..cols {
            out.push(dot_reference(a, &rhs[j * inner..(j + 1) * inner]));
        }
    }
}

const NT_TILE: usize = 8;

#[inline(always)]
#[allow(clippy::needless_range_loop)]
fn nt_row_portable_body<const R: usize>(
    a: &[f64],
    inner: usize,
    rhs: &[f64],
    rhs_t: &[f64],
    cols: usize,
    out: &mut Vec<f64>,
) {
    let inner = if R > 0 { R } else { inner };
    let chunks = inner / 4;
    let mut j = 0;
    // Tiles of 8 output columns: 4 lane accumulators × 8 columns, all
    // independent, so the autovectorizer can keep 8 fma chains in
    // flight. Per column the accumulation is exactly the lane-split-4
    // chain of `dot_reference`.
    while j + NT_TILE <= cols {
        let mut acc = [[0.0f64; NT_TILE]; 4];
        for k in 0..chunks {
            for c in 0..4 {
                let ak = a[4 * k + c];
                let r = &rhs_t[(4 * k + c) * cols + j..][..NT_TILE];
                for t in 0..NT_TILE {
                    acc[c][t] = ak.mul_add(r[t], acc[c][t]);
                }
            }
        }
        let mut comb = [0.0f64; NT_TILE];
        for t in 0..NT_TILE {
            comb[t] = (acc[0][t] + acc[2][t]) + (acc[1][t] + acc[3][t]);
        }
        for k in 4 * chunks..inner {
            let ak = a[k];
            let r = &rhs_t[k * cols + j..][..NT_TILE];
            for t in 0..NT_TILE {
                comb[t] = ak.mul_add(r[t], comb[t]);
            }
        }
        out.extend_from_slice(&comb);
        j += NT_TILE;
    }
    // Column remainder: per-entry dot against the contiguous rhs row —
    // same chain, same bits.
    while j < cols {
        out.push(dot_portable(a, &rhs[j * inner..(j + 1) * inner]));
        j += 1;
    }
}

/// Portable blocked/tiled `matmul_nt` over raw row-major storage:
/// `lhs` is `rows × inner`, `rhs` is `cols × inner`, `rhs_t` is the
/// materialized `inner × cols` transpose. Appends `rows·cols` entries
/// to `out` (cleared first). `inner` must be ≥ 1 (the caller
/// short-circuits the empty inner dimension).
pub fn matmul_nt_portable(
    lhs: &[f64],
    rhs: &[f64],
    rhs_t: &[f64],
    rows: usize,
    inner: usize,
    cols: usize,
    out: &mut Vec<f64>,
) {
    out.clear();
    out.reserve(rows * cols);
    for i in 0..rows {
        let a = &lhs[i * inner..(i + 1) * inner];
        match inner {
            4 => nt_row_portable_body::<4>(a, inner, rhs, rhs_t, cols, out),
            8 => nt_row_portable_body::<8>(a, inner, rhs, rhs_t, cols, out),
            10 => nt_row_portable_body::<10>(a, inner, rhs, rhs_t, cols, out),
            16 => nt_row_portable_body::<16>(a, inner, rhs, rhs_t, cols, out),
            _ => nt_row_portable_body::<0>(a, inner, rhs, rhs_t, cols, out),
        }
    }
}

/// AVX2+FMA blocked/tiled `matmul_nt` (same storage conventions as
/// [`matmul_nt_portable`]).
///
/// # Panics
/// Panics when the CPU lacks AVX2/FMA.
#[allow(unsafe_code)]
pub fn matmul_nt_avx2(
    lhs: &[f64],
    rhs: &[f64],
    rhs_t: &[f64],
    rows: usize,
    inner: usize,
    cols: usize,
    out: &mut Vec<f64>,
) {
    assert!(avx2_available(), "AVX2 matmul_nt on a CPU without AVX2/FMA");
    // SAFETY: feature check above.
    unsafe { avx2::matmul_nt(lhs, rhs, rhs_t, rows, inner, cols, out) }
}

/// Dispatched `matmul_nt` backend (shapes already validated by
/// [`crate::Matrix::matmul_nt_into`]).
#[inline]
#[allow(unsafe_code)]
pub(crate) fn matmul_nt_dispatch(
    lhs: &[f64],
    rhs: &[f64],
    rhs_t: &[f64],
    rows: usize,
    inner: usize,
    cols: usize,
    out: &mut Vec<f64>,
) {
    match active() {
        Dispatch::Avx512 => {
            // SAFETY: `active()` implies `avx512_available()`.
            unsafe { avx512::matmul_nt(lhs, rhs, rhs_t, rows, inner, cols, out) }
        }
        Dispatch::Avx2 => {
            // SAFETY: `active()` implies `avx2_available()`.
            unsafe { avx2::matmul_nt(lhs, rhs, rhs_t, rows, inner, cols, out) }
        }
        Dispatch::Portable => matmul_nt_portable(lhs, rhs, rhs_t, rows, inner, cols, out),
    }
}

/// AVX-512F tiled `matmul_nt` (same storage conventions as
/// [`matmul_nt_portable`]).
///
/// # Panics
/// Panics when the CPU lacks AVX-512F.
#[allow(unsafe_code)]
pub fn matmul_nt_avx512(
    lhs: &[f64],
    rhs: &[f64],
    rhs_t: &[f64],
    rows: usize,
    inner: usize,
    cols: usize,
    out: &mut Vec<f64>,
) {
    assert!(
        avx512_available(),
        "AVX-512 matmul_nt on a CPU without AVX-512F"
    );
    // SAFETY: feature check above.
    unsafe { avx512::matmul_nt(lhs, rhs, rhs_t, rows, inner, cols, out) }
}

// ---------------------------------------------------------------------------
// AVX2 implementations (the only unsafe code in the crate)
// ---------------------------------------------------------------------------

/// The `std::arch` implementations. Everything here is compiled with
/// `#[target_feature(enable = "avx2", enable = "fma")]` and must only
/// be called after a runtime feature check; the safe wrappers above
/// are the only callers.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code, clippy::needless_range_loop)]
mod avx2 {
    use std::arch::x86_64::*;

    /// Horizontal reduce matching the contract's combine order:
    /// `(lane0 + lane2) + (lane1 + lane3)`.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(acc: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(acc); // [lane0, lane1]
        let hi = _mm256_extractf128_pd::<1>(acc); // [lane2, lane3]
        let pair = _mm_add_pd(lo, hi); // [l0+l2, l1+l3]
        let swapped = _mm_unpackhi_pd(pair, pair); // [l1+l3, l1+l3]
        _mm_cvtsd_f64(_mm_add_sd(pair, swapped))
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn dot_body<const R: usize>(a: &[f64], b: &[f64]) -> f64 {
        let n = if R > 0 { R } else { a.len() };
        let chunks = n / 4;
        let mut acc = _mm256_setzero_pd();
        for k in 0..chunks {
            let va = _mm256_loadu_pd(a.as_ptr().add(4 * k));
            let vb = _mm256_loadu_pd(b.as_ptr().add(4 * k));
            acc = _mm256_fmadd_pd(va, vb, acc);
        }
        let mut combined = hsum(acc);
        for k in 4 * chunks..n {
            combined = (*a.get_unchecked(k)).mul_add(*b.get_unchecked(k), combined);
        }
        combined
    }

    // `#[inline]` on the public entry points lets builds whose baseline
    // already includes AVX2+FMA (e.g. `target-cpu=native`) inline the
    // whole chain into the dispatcher's callers; generic builds keep a
    // plain call across the `#[target_feature]` boundary.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
        match a.len() {
            4 => dot_body::<4>(a, b),
            8 => dot_body::<8>(a, b),
            10 => dot_body::<10>(a, b),
            16 => dot_body::<16>(a, b),
            _ => dot_body::<0>(a, b),
        }
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn axpby_body<const R: usize>(y: &mut [f64], beta: f64, alpha: f64, x: &[f64]) {
        let n = if R > 0 { R } else { y.len() };
        let chunks = n / 4;
        let vbeta = _mm256_set1_pd(beta);
        let valpha = _mm256_set1_pd(alpha);
        for k in 0..chunks {
            let vy = _mm256_loadu_pd(y.as_ptr().add(4 * k));
            let vx = _mm256_loadu_pd(x.as_ptr().add(4 * k));
            let r = _mm256_fmadd_pd(vbeta, vy, _mm256_mul_pd(valpha, vx));
            _mm256_storeu_pd(y.as_mut_ptr().add(4 * k), r);
        }
        for k in 4 * chunks..n {
            let yk = *y.get_unchecked(k);
            *y.get_unchecked_mut(k) = beta.mul_add(yk, alpha * *x.get_unchecked(k));
        }
    }

    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn axpby(y: &mut [f64], beta: f64, alpha: f64, x: &[f64]) {
        match y.len() {
            4 => axpby_body::<4>(y, beta, alpha, x),
            8 => axpby_body::<8>(y, beta, alpha, x),
            10 => axpby_body::<10>(y, beta, alpha, x),
            16 => axpby_body::<16>(y, beta, alpha, x),
            _ => axpby_body::<0>(y, beta, alpha, x),
        }
    }

    /// One output row with the rank's broadcasts hoisted into
    /// registers: the `R` lane multipliers `set1(a[k])` are loaded
    /// once per row, so each 4-column tile costs only its `rhsᵀ`
    /// loads — folded straight into the fmas — plus the combine and
    /// one store. The tile kernels are load-port-bound, so dropping
    /// the per-tile broadcast loads is worth ~30% at rank 10; `R`
    /// must be small enough that `R + 4` accumulators fit the 16
    /// `ymm` registers (callers use this for ranks 4/8/10).
    ///
    /// (Non-temporal stores were tried here and measured ~2× slower
    /// than regular stores on the virtualized reference host, so the
    /// tile store below is a plain `vmovupd`.)
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn nt_row_hoisted<const R: usize>(
        a: &[f64],
        rhs: &[f64],
        rhs_t: &[f64],
        cols: usize,
        out: &mut Vec<f64>,
    ) {
        let chunks = R / 4;
        let mut ab = [_mm256_setzero_pd(); R];
        for (k, slot) in ab.iter_mut().enumerate() {
            *slot = _mm256_set1_pd(*a.get_unchecked(k));
        }
        let rt = rhs_t.as_ptr();
        let start = out.len();
        let op = out.as_mut_ptr().add(start);
        // One 4-column tile; a macro (not a helper fn) because
        // `#[inline(always)]` cannot be combined with
        // `#[target_feature]` and the body must stay in this frame.
        macro_rules! tile {
            ($j:expr) => {{
                let j = $j;
                let mut acc = [_mm256_setzero_pd(); 4];
                for k in 0..chunks {
                    for c in 0..4 {
                        let row = _mm256_loadu_pd(rt.add((4 * k + c) * cols + j));
                        acc[c] = _mm256_fmadd_pd(ab[4 * k + c], row, acc[c]);
                    }
                }
                let mut comb =
                    _mm256_add_pd(_mm256_add_pd(acc[0], acc[2]), _mm256_add_pd(acc[1], acc[3]));
                for k in 4 * chunks..R {
                    comb = _mm256_fmadd_pd(ab[k], _mm256_loadu_pd(rt.add(k * cols + j)), comb);
                }
                _mm256_storeu_pd(op.add(j), comb);
            }};
        }
        let mut j = 0;
        // 2× unrolled: loop control is a fifth of the tile's
        // instruction count, so halving it is measurable.
        while j + 8 <= cols {
            tile!(j);
            tile!(j + 4);
            j += 8;
        }
        while j + 4 <= cols {
            tile!(j);
            j += 4;
        }
        while j < cols {
            *op.add(j) = dot(a, rhs.get_unchecked(j * R..(j + 1) * R));
            j += 1;
        }
        out.set_len(start + cols);
    }

    /// One output row, 8 columns at a time: 4 lane accumulators × two
    /// 256-bit halves = 8 independent fma chains per tile. Also the
    /// fallback for non-monomorphized ranks on the AVX-512 path.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn nt_row<const R: usize>(
        a: &[f64],
        inner: usize,
        rhs: &[f64],
        rhs_t: &[f64],
        cols: usize,
        out: &mut Vec<f64>,
    ) {
        let inner = if R > 0 { R } else { inner };
        let chunks = inner / 4;
        let rt = rhs_t.as_ptr();
        let mut j = 0;
        while j + 8 <= cols {
            let mut acc = [[_mm256_setzero_pd(); 2]; 4];
            for k in 0..chunks {
                for c in 0..4 {
                    let ak = _mm256_set1_pd(*a.get_unchecked(4 * k + c));
                    let row = rt.add((4 * k + c) * cols + j);
                    acc[c][0] = _mm256_fmadd_pd(ak, _mm256_loadu_pd(row), acc[c][0]);
                    acc[c][1] = _mm256_fmadd_pd(ak, _mm256_loadu_pd(row.add(4)), acc[c][1]);
                }
            }
            let mut comb = [_mm256_setzero_pd(); 2];
            for (h, slot) in comb.iter_mut().enumerate() {
                *slot = _mm256_add_pd(
                    _mm256_add_pd(acc[0][h], acc[2][h]),
                    _mm256_add_pd(acc[1][h], acc[3][h]),
                );
            }
            for k in 4 * chunks..inner {
                let ak = _mm256_set1_pd(*a.get_unchecked(k));
                let row = rt.add(k * cols + j);
                comb[0] = _mm256_fmadd_pd(ak, _mm256_loadu_pd(row), comb[0]);
                comb[1] = _mm256_fmadd_pd(ak, _mm256_loadu_pd(row.add(4)), comb[1]);
            }
            // Capacity was reserved up front; write through the raw
            // pointer first, then publish the new length.
            let start = out.len();
            _mm256_storeu_pd(out.as_mut_ptr().add(start), comb[0]);
            _mm256_storeu_pd(out.as_mut_ptr().add(start + 4), comb[1]);
            out.set_len(start + 8);
            j += 8;
        }
        while j < cols {
            out.push(dot(a, &rhs[j * inner..(j + 1) * inner]));
            j += 1;
        }
    }

    #[target_feature(enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_nt(
        lhs: &[f64],
        rhs: &[f64],
        rhs_t: &[f64],
        rows: usize,
        inner: usize,
        cols: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(rows * cols);
        for i in 0..rows {
            let a = &lhs[i * inner..(i + 1) * inner];
            match inner {
                4 => nt_row_hoisted::<4>(a, rhs, rhs_t, cols, out),
                8 => nt_row_hoisted::<8>(a, rhs, rhs_t, cols, out),
                10 => nt_row_hoisted::<10>(a, rhs, rhs_t, cols, out),
                16 => nt_row::<16>(a, inner, rhs, rhs_t, cols, out),
                _ => nt_row::<0>(a, inner, rhs, rhs_t, cols, out),
            }
        }
    }
}

/// The AVX-512F `matmul_nt` tiles. Same lane-split-4 contract, wider
/// registers: a `zmm` accumulator carries eight output columns, and
/// each of its 64-bit elements runs exactly the scalar reference
/// chain for its column — the bits cannot differ from the AVX2 or
/// portable paths. `dot`/`axpby` have no AVX-512 form (their contract
/// fixes four lanes), so only this kernel lives here.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code, clippy::needless_range_loop)]
mod avx512 {
    use std::arch::x86_64::*;

    /// One output row, 8 columns per 512-bit tile, with the rank's
    /// broadcasts hoisted into registers (AVX-512 has 32 of them, so
    /// rank 16 fits comfortably). Per tile the loads fold into the
    /// fmas, halving the per-output load-port pressure that bounds
    /// the 256-bit kernel.
    #[inline]
    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    unsafe fn nt_row_hoisted<const R: usize>(
        a: &[f64],
        rhs: &[f64],
        rhs_t: &[f64],
        cols: usize,
        out: &mut Vec<f64>,
    ) {
        let chunks = R / 4;
        let mut ab = [_mm512_setzero_pd(); R];
        for (k, slot) in ab.iter_mut().enumerate() {
            *slot = _mm512_set1_pd(*a.get_unchecked(k));
        }
        let rt = rhs_t.as_ptr();
        let start = out.len();
        let op = out.as_mut_ptr().add(start);
        let mut j = 0;
        // Two independent 8-column tiles per iteration: 8 accumulator
        // chains hide fma latency behind the folded L1 loads, and the
        // loop overhead amortizes over 16 outputs (18 live registers,
        // well inside the 32-register file).
        while j + 16 <= cols {
            let mut acc = [_mm512_setzero_pd(); 4];
            let mut acc2 = [_mm512_setzero_pd(); 4];
            for k in 0..chunks {
                for c in 0..4 {
                    let p = rt.add((4 * k + c) * cols + j);
                    acc[c] = _mm512_fmadd_pd(ab[4 * k + c], _mm512_loadu_pd(p), acc[c]);
                    acc2[c] = _mm512_fmadd_pd(ab[4 * k + c], _mm512_loadu_pd(p.add(8)), acc2[c]);
                }
            }
            let mut comb =
                _mm512_add_pd(_mm512_add_pd(acc[0], acc[2]), _mm512_add_pd(acc[1], acc[3]));
            let mut comb2 = _mm512_add_pd(
                _mm512_add_pd(acc2[0], acc2[2]),
                _mm512_add_pd(acc2[1], acc2[3]),
            );
            for k in 4 * chunks..R {
                let p = rt.add(k * cols + j);
                comb = _mm512_fmadd_pd(ab[k], _mm512_loadu_pd(p), comb);
                comb2 = _mm512_fmadd_pd(ab[k], _mm512_loadu_pd(p.add(8)), comb2);
            }
            _mm512_storeu_pd(op.add(j), comb);
            _mm512_storeu_pd(op.add(j + 8), comb2);
            j += 16;
        }
        while j + 8 <= cols {
            let mut acc = [_mm512_setzero_pd(); 4];
            for k in 0..chunks {
                for c in 0..4 {
                    let row = _mm512_loadu_pd(rt.add((4 * k + c) * cols + j));
                    acc[c] = _mm512_fmadd_pd(ab[4 * k + c], row, acc[c]);
                }
            }
            let mut comb =
                _mm512_add_pd(_mm512_add_pd(acc[0], acc[2]), _mm512_add_pd(acc[1], acc[3]));
            for k in 4 * chunks..R {
                comb = _mm512_fmadd_pd(ab[k], _mm512_loadu_pd(rt.add(k * cols + j)), comb);
            }
            _mm512_storeu_pd(op.add(j), comb);
            j += 8;
        }
        // 4-column remainder tile on the lower 256-bit halves of the
        // hoisted broadcasts (a free cast), then per-entry dots.
        if j + 4 <= cols {
            let mut acc = [_mm256_setzero_pd(); 4];
            for k in 0..chunks {
                for c in 0..4 {
                    let row = _mm256_loadu_pd(rt.add((4 * k + c) * cols + j));
                    acc[c] = _mm256_fmadd_pd(_mm512_castpd512_pd256(ab[4 * k + c]), row, acc[c]);
                }
            }
            let mut comb =
                _mm256_add_pd(_mm256_add_pd(acc[0], acc[2]), _mm256_add_pd(acc[1], acc[3]));
            for k in 4 * chunks..R {
                comb = _mm256_fmadd_pd(
                    _mm512_castpd512_pd256(ab[k]),
                    _mm256_loadu_pd(rt.add(k * cols + j)),
                    comb,
                );
            }
            _mm256_storeu_pd(op.add(j), comb);
            j += 4;
        }
        while j < cols {
            *op.add(j) = super::avx2::dot(a, rhs.get_unchecked(j * R..(j + 1) * R));
            j += 1;
        }
        out.set_len(start + cols);
    }

    #[target_feature(enable = "avx512f", enable = "avx2", enable = "fma")]
    pub unsafe fn matmul_nt(
        lhs: &[f64],
        rhs: &[f64],
        rhs_t: &[f64],
        rows: usize,
        inner: usize,
        cols: usize,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.reserve(rows * cols);
        for i in 0..rows {
            let a = &lhs[i * inner..(i + 1) * inner];
            match inner {
                4 => nt_row_hoisted::<4>(a, rhs, rhs_t, cols, out),
                8 => nt_row_hoisted::<8>(a, rhs, rhs_t, cols, out),
                10 => nt_row_hoisted::<10>(a, rhs, rhs_t, cols, out),
                16 => nt_row_hoisted::<16>(a, rhs, rhs_t, cols, out),
                _ => super::avx2::nt_row::<0>(a, inner, rhs, rhs_t, cols, out),
            }
        }
    }
}

// Non-x86-64 stub so the dispatchers compile everywhere; `active()`
// can never return `Avx2` on these targets.
#[cfg(not(target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx2 {
    pub unsafe fn dot(_a: &[f64], _b: &[f64]) -> f64 {
        unreachable!("AVX2 path selected on a non-x86-64 target")
    }
    pub unsafe fn axpby(_y: &mut [f64], _beta: f64, _alpha: f64, _x: &[f64]) {
        unreachable!("AVX2 path selected on a non-x86-64 target")
    }
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn matmul_nt(
        _lhs: &[f64],
        _rhs: &[f64],
        _rhs_t: &[f64],
        _rows: usize,
        _inner: usize,
        _cols: usize,
        _out: &mut Vec<f64>,
    ) {
        unreachable!("AVX2 path selected on a non-x86-64 target")
    }
}

#[cfg(not(target_arch = "x86_64"))]
#[allow(unsafe_code)]
mod avx512 {
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn matmul_nt(
        _lhs: &[f64],
        _rhs: &[f64],
        _rhs_t: &[f64],
        _rows: usize,
        _inner: usize,
        _cols: usize,
        _out: &mut Vec<f64>,
    ) {
        unreachable!("AVX-512 path selected on a non-x86-64 target")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, salt: u64) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(salt) % 1000) as f64 / 37.0)
                    - 13.0
            })
            .collect()
    }

    #[test]
    fn portable_dot_matches_reference_bitwise() {
        for n in 0..=33 {
            let a = data(n, 1);
            let b = data(n, 7);
            assert_eq!(
                dot_portable(&a, &b).to_bits(),
                dot_reference(&a, &b).to_bits(),
                "rank {n}"
            );
        }
    }

    #[test]
    fn avx2_dot_matches_reference_bitwise() {
        if !avx2_available() {
            return;
        }
        for n in 0..=33 {
            let a = data(n, 3);
            let b = data(n, 11);
            assert_eq!(
                dot_avx2(&a, &b).to_bits(),
                dot_reference(&a, &b).to_bits(),
                "rank {n}"
            );
        }
    }

    #[test]
    fn axpby_paths_match_bitwise() {
        for n in 0..=33 {
            let x = data(n, 5);
            let mut y_ref = data(n, 9);
            let mut y_port = y_ref.clone();
            axpby_reference(&mut y_ref, 0.987, -0.031, &x);
            axpby_portable(&mut y_port, 0.987, -0.031, &x);
            assert_eq!(bits(&y_ref), bits(&y_port), "rank {n}");
            if avx2_available() {
                let mut y_simd = data(n, 9);
                axpby_avx2(&mut y_simd, 0.987, -0.031, &x);
                assert_eq!(bits(&y_ref), bits(&y_simd), "rank {n}");
            }
        }
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn matmul_paths_match_reference_bitwise() {
        for (rows, inner, cols) in [(3, 10, 17), (5, 4, 8), (2, 16, 9), (4, 7, 3), (1, 1, 1)] {
            let lhs = data(rows * inner, 21);
            let rhs = data(cols * inner, 23);
            let mut rhs_t = vec![0.0; inner * cols];
            for j in 0..cols {
                for k in 0..inner {
                    rhs_t[k * cols + j] = rhs[j * inner + k];
                }
            }
            let mut want = Vec::new();
            matmul_nt_reference(&lhs, &rhs, rows, inner, cols, &mut want);
            let mut got = Vec::new();
            matmul_nt_portable(&lhs, &rhs, &rhs_t, rows, inner, cols, &mut got);
            assert_eq!(bits(&want), bits(&got), "portable {rows}x{inner}x{cols}");
            if avx2_available() {
                matmul_nt_avx2(&lhs, &rhs, &rhs_t, rows, inner, cols, &mut got);
                assert_eq!(bits(&want), bits(&got), "avx2 {rows}x{inner}x{cols}");
            }
            if avx512_available() {
                matmul_nt_avx512(&lhs, &rhs, &rhs_t, rows, inner, cols, &mut got);
                assert_eq!(bits(&want), bits(&got), "avx512 {rows}x{inner}x{cols}");
            }
        }
    }

    #[test]
    fn signed_zero_follows_v2_contract() {
        // fma(x, y, +0.0) flushes a -0.0 product to +0.0: the v2 chain
        // returns +0.0 where the v1 product-initialized chain kept the
        // sign. Pinned here so the quirk is deliberate, not accidental.
        let a = [-1.0, 0.0];
        let b = [0.0, 5.0];
        let d = dot_reference(&a, &b);
        assert_eq!(d.to_bits(), 0.0f64.to_bits());
        assert_eq!(dot_portable(&a, &b).to_bits(), d.to_bits());
    }

    #[test]
    fn thread_override_controls_active_path() {
        let default = active();
        set_thread_override(Some(Dispatch::Portable));
        assert_eq!(active(), Dispatch::Portable);
        set_thread_override(None);
        assert_eq!(active(), default);
    }
}
