//! Singular value decomposition.
//!
//! Two algorithms, chosen by problem size:
//!
//! * [`jacobi_svd`] — exact one-sided Jacobi SVD. Robust, simple,
//!   accurate to machine precision; `O(m n² · sweeps)`, fine for the
//!   few-hundred-node matrices in tests and for small experiments.
//! * [`randomized_top_k`] — randomized subspace iteration that extracts
//!   the leading `k` singular values of large matrices. Figure 1 of the
//!   paper needs the top-20 spectrum of a 2255 × 2255 RTT matrix, for
//!   which a full Jacobi SVD would be needlessly cubic.
//!
//! The convention is `A = U Σ Vᵀ` with singular values sorted in
//! descending order; `U` is `m × p`, `V` is `n × p` with
//! `p = min(m, n)` (or `k` for the randomized variant).

use crate::decomp::qr;
use crate::Matrix;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a singular value decomposition `A = U Σ Vᵀ`.
#[derive(Clone, Debug)]
pub struct Svd {
    /// Left singular vectors, one per column.
    pub u: Matrix,
    /// Singular values, descending.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, one per column.
    pub v: Matrix,
}

impl Svd {
    /// Reconstructs `U Σ Vᵀ` (useful in tests).
    pub fn reconstruct(&self) -> Matrix {
        crate::decomp::low_rank_approximation(
            &self.u,
            &self.singular_values,
            &self.v,
            self.singular_values.len(),
        )
    }
}

/// Exact SVD via one-sided Jacobi rotations.
///
/// Orthogonalizes the columns of a working copy of `A` by pairwise
/// Givens rotations (accumulated into `V`); on convergence the column
/// norms are the singular values and the normalized columns form `U`.
/// Converges quadratically; we cap at 60 sweeps which is far beyond
/// what any realistic input needs.
pub fn jacobi_svd(a: &Matrix) -> Svd {
    let (m, n) = a.shape();
    if m < n {
        // Work on the transpose and swap factors back.
        let svd_t = jacobi_svd(&a.transpose());
        return Svd {
            u: svd_t.v,
            singular_values: svd_t.singular_values,
            v: svd_t.u,
        };
    }

    let mut work = a.clone(); // m × n, columns get rotated
    let mut v = Matrix::identity(n);
    let eps = 1e-12;
    let max_sweeps = 60;

    for _sweep in 0..max_sweeps {
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                // Gram entries for the (p, q) column pair.
                let mut app = 0.0;
                let mut aqq = 0.0;
                let mut apq = 0.0;
                for i in 0..m {
                    let wp = work[(i, p)];
                    let wq = work[(i, q)];
                    app += wp * wp;
                    aqq += wq * wq;
                    apq += wp * wq;
                }
                if apq.abs() <= eps * (app * aqq).sqrt() || apq == 0.0 {
                    continue;
                }
                off = off.max(apq.abs() / (app * aqq).sqrt().max(f64::MIN_POSITIVE));

                // Rotation angle that zeroes the (p,q) Gram entry.
                let zeta = (aqq - app) / (2.0 * apq);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;

                for i in 0..m {
                    let wp = work[(i, p)];
                    let wq = work[(i, q)];
                    work[(i, p)] = c * wp - s * wq;
                    work[(i, q)] = s * wp + c * wq;
                }
                for i in 0..n {
                    let vp = v[(i, p)];
                    let vq = v[(i, q)];
                    v[(i, p)] = c * vp - s * vq;
                    v[(i, q)] = s * vp + c * vq;
                }
            }
        }
        if off < 1e-12 {
            break;
        }
    }

    // Extract singular values (column norms) and normalize U.
    let mut order: Vec<usize> = (0..n).collect();
    let mut sigmas = vec![0.0f64; n];
    for (j, sigma) in sigmas.iter_mut().enumerate() {
        let mut norm = 0.0;
        for i in 0..m {
            norm += work[(i, j)] * work[(i, j)];
        }
        *sigma = norm.sqrt();
    }
    order.sort_by(|&x, &y| {
        sigmas[y]
            .partial_cmp(&sigmas[x])
            .expect("NaN singular value")
    });

    let mut u = Matrix::zeros(m, n);
    let mut v_sorted = Matrix::zeros(n, n);
    let mut singular_values = Vec::with_capacity(n);
    for (new_j, &old_j) in order.iter().enumerate() {
        let sigma = sigmas[old_j];
        singular_values.push(sigma);
        if sigma > 1e-14 {
            for i in 0..m {
                u[(i, new_j)] = work[(i, old_j)] / sigma;
            }
        }
        for i in 0..n {
            v_sorted[(i, new_j)] = v[(i, old_j)];
        }
    }

    Svd {
        u,
        singular_values,
        v: v_sorted,
    }
}

/// Top-`k` singular values (and vectors) of a large matrix by
/// randomized subspace iteration (Halko–Martinsson–Tropp).
///
/// * `oversample` extra probe vectors sharpen the estimate (8–10 is
///   plenty for the fast-decaying spectra we target);
/// * `power_iters` power iterations sharpen separation between kept and
///   discarded singular values (2–3 suffices here).
///
/// The result is deterministic for a given `seed`.
pub fn randomized_top_k(
    a: &Matrix,
    k: usize,
    oversample: usize,
    power_iters: usize,
    seed: u64,
) -> Svd {
    let (m, n) = a.shape();
    let p = (k + oversample).min(n).min(m);
    assert!(p > 0, "randomized_top_k needs a non-empty target rank");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Gaussian probe block Ω (n × p).
    let omega = Matrix::from_fn(n, p, |_, _| crate::stats::normal_sample(&mut rng, 0.0, 1.0));

    // Y = A Ω, orthonormalize.
    let mut q = qr(&a.matmul(&omega)).0;
    let at = a.transpose();
    for _ in 0..power_iters {
        // Subspace iteration with re-orthonormalization each half-step
        // to avoid collapsing onto the dominant singular vector.
        let z = qr(&at.matmul(&q)).0;
        q = qr(&a.matmul(&z)).0;
    }

    // B = Qᵀ A is small (p × n): exact Jacobi SVD.
    let b = q.transpose().matmul(a);
    let svd_b = jacobi_svd(&b);

    // A ≈ Q B = (Q U_b) Σ Vᵀ.
    let u = q.matmul(&svd_b.u);
    let kk = k.min(svd_b.singular_values.len());
    let (m_u, _) = u.shape();
    let (n_v, _) = svd_b.v.shape();
    let u_k = Matrix::from_fn(m_u, kk, |i, j| u[(i, j)]);
    let v_k = Matrix::from_fn(n_v, kk, |i, j| svd_b.v[(i, j)]);
    Svd {
        u: u_k,
        singular_values: svd_b.singular_values[..kk].to_vec(),
        v: v_k,
    }
}

/// Convenience: just the singular values of `a` (exact Jacobi).
pub fn singular_values(a: &Matrix) -> Vec<f64> {
    jacobi_svd(a).singular_values
}

/// Generates a random `m × n` matrix of exact rank `r` (used by tests
/// and benchmarks): product of two Gaussian factors.
pub fn random_low_rank(m: usize, n: usize, r: usize, rng: &mut impl Rng) -> Matrix {
    let left = Matrix::from_fn(m, r, |_, _| crate::stats::normal_sample(rng, 0.0, 1.0));
    let right = Matrix::from_fn(r, n, |_, _| crate::stats::normal_sample(rng, 0.0, 1.0));
    left.matmul(&right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn assert_orthonormal_cols(m: &Matrix, tol: f64) {
        let g = m.transpose().matmul(m);
        let id = Matrix::identity(m.cols());
        assert!(
            g.sub(&id).frobenius_norm() < tol,
            "columns not orthonormal: err {}",
            g.sub(&id).frobenius_norm()
        );
    }

    #[test]
    fn diagonal_matrix_svd() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 2.0]]);
        let svd = jacobi_svd(&a);
        assert!((svd.singular_values[0] - 3.0).abs() < 1e-10);
        assert!((svd.singular_values[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn known_2x2_svd() {
        // A = [[3, 0], [4, 5]]: singular values are sqrt(45) and sqrt(5).
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[4.0, 5.0]]);
        let svd = jacobi_svd(&a);
        assert!((svd.singular_values[0] - 45.0f64.sqrt()).abs() < 1e-10);
        assert!((svd.singular_values[1] - 5.0f64.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let a = Matrix::from_fn(12, 7, |_, _| {
            crate::stats::normal_sample(&mut rng, 0.0, 1.0)
        });
        let svd = jacobi_svd(&a);
        assert!(svd.reconstruct().sub(&a).frobenius_norm() < 1e-8);
        assert_orthonormal_cols(&svd.v, 1e-8);
        // U has orthonormal columns wherever σ > 0.
        assert_orthonormal_cols(&svd.u, 1e-8);
        // Sorted descending.
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn wide_matrix_transposed_internally() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let a = Matrix::from_fn(5, 9, |_, _| crate::stats::normal_sample(&mut rng, 0.0, 1.0));
        let svd = jacobi_svd(&a);
        assert_eq!(svd.u.shape(), (5, 5));
        assert_eq!(svd.v.shape(), (9, 5));
        assert!(svd.reconstruct().sub(&a).frobenius_norm() < 1e-8);
    }

    #[test]
    fn rank_deficient_spectrum() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let a = random_low_rank(20, 20, 3, &mut rng);
        let svd = jacobi_svd(&a);
        assert!(svd.singular_values[2] > 1e-6);
        for &s in &svd.singular_values[3..] {
            assert!(s < 1e-8, "rank-3 matrix has extra singular value {s}");
        }
    }

    #[test]
    fn singular_values_match_eigen_of_gram() {
        // σ(A)² must equal eigenvalues of AᵀA; check the largest via
        // power iteration on the Gram matrix.
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let a = Matrix::from_fn(15, 10, |_, _| {
            crate::stats::normal_sample(&mut rng, 0.0, 1.0)
        });
        let gram = a.transpose().matmul(&a);
        // Power iteration.
        let mut x = vec![1.0; 10];
        for _ in 0..500 {
            let mut y = vec![0.0; 10];
            for i in 0..10 {
                for j in 0..10 {
                    y[i] += gram[(i, j)] * x[j];
                }
            }
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            for v in &mut y {
                *v /= norm;
            }
            x = y;
        }
        let mut lambda = 0.0;
        for i in 0..10 {
            let mut gx = 0.0;
            for j in 0..10 {
                gx += gram[(i, j)] * x[j];
            }
            lambda += x[i] * gx;
        }
        let svd = jacobi_svd(&a);
        assert!((svd.singular_values[0] - lambda.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn randomized_matches_exact_on_low_rank() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        let a = random_low_rank(60, 60, 5, &mut rng);
        let exact = jacobi_svd(&a);
        let approx = randomized_top_k(&a, 5, 8, 2, 99);
        for i in 0..5 {
            let rel = (approx.singular_values[i] - exact.singular_values[i]).abs()
                / exact.singular_values[i];
            assert!(rel < 1e-6, "σ{i} rel err {rel}");
        }
    }

    #[test]
    fn randomized_top_k_truncates() {
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let a = random_low_rank(40, 30, 10, &mut rng);
        let approx = randomized_top_k(&a, 4, 6, 2, 1);
        assert_eq!(approx.singular_values.len(), 4);
        assert_eq!(approx.u.shape(), (40, 4));
        assert_eq!(approx.v.shape(), (30, 4));
    }

    #[test]
    fn zero_matrix_svd() {
        let a = Matrix::zeros(6, 4);
        let svd = jacobi_svd(&a);
        assert!(svd.singular_values.iter().all(|&s| s == 0.0));
    }
}
