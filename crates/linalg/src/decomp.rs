//! QR factorization, low-rank truncation and effective-rank utilities.
//!
//! Figure 1 of the paper plots *normalized* singular-value spectra to
//! argue that RTT/ABW matrices (and their binary class matrices) have
//! low effective rank. [`normalized_spectrum`] and [`effective_rank`]
//! implement exactly those views; [`qr`] is the building block of the
//! randomized SVD in [`crate::svd`].

use crate::Matrix;

/// Solves the square linear system `A x = b` by Gaussian elimination
/// with partial pivoting.
///
/// Returns `None` when `A` is (numerically) singular. Used by the ALS
/// baseline, which solves many small `r × r` normal-equation systems.
pub fn solve(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    assert!(a.is_square(), "solve requires a square matrix");
    let n = a.rows();
    assert_eq!(b.len(), n, "rhs length mismatch");
    // Augmented working copy.
    let mut m = a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..n {
            if m[(row, col)].abs() > m[(pivot, col)].abs() {
                pivot = row;
            }
        }
        if m[(pivot, col)].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot, j)];
                m[(pivot, j)] = tmp;
            }
            x.swap(col, pivot);
        }
        let diag = m[(col, col)];
        for row in (col + 1)..n {
            let factor = m[(row, col)] / diag;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(row, j)] -= factor * v;
            }
            x[row] -= factor * x[col];
        }
    }
    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for j in (col + 1)..n {
            acc -= m[(col, j)] * x[j];
        }
        x[col] = acc / m[(col, col)];
    }
    Some(x)
}

/// Thin QR factorization via modified Gram–Schmidt.
///
/// Returns `(Q, R)` with `Q` of shape `m × n` having orthonormal columns
/// and `R` upper-triangular `n × n`, such that `A = Q R`.
/// Columns that are numerically dependent produce zero columns in `Q`
/// (and zero diagonal in `R`) rather than garbage.
pub fn qr(a: &Matrix) -> (Matrix, Matrix) {
    let (m, n) = a.shape();
    let mut q = a.clone();
    let mut r = Matrix::zeros(n, n);
    for j in 0..n {
        // Orthogonalize column j against previous columns (twice is
        // enough: "twice is enough" re-orthogonalization for MGS).
        for _pass in 0..2 {
            for i in 0..j {
                let mut dot = 0.0;
                for k in 0..m {
                    dot += q[(k, i)] * q[(k, j)];
                }
                r[(i, j)] += dot;
                for k in 0..m {
                    let qi = q[(k, i)];
                    q[(k, j)] -= dot * qi;
                }
            }
        }
        let mut norm = 0.0;
        for k in 0..m {
            norm += q[(k, j)] * q[(k, j)];
        }
        let norm = norm.sqrt();
        r[(j, j)] = norm;
        if norm > 1e-14 {
            for k in 0..m {
                q[(k, j)] /= norm;
            }
        } else {
            for k in 0..m {
                q[(k, j)] = 0.0;
            }
        }
    }
    (q, r)
}

/// Truncates an SVD-style factorization to rank `r`:
/// returns `U_r Σ_r V_rᵀ` given the full factors.
pub fn low_rank_approximation(u: &Matrix, singular_values: &[f64], v: &Matrix, r: usize) -> Matrix {
    let r = r.min(singular_values.len());
    let (m, _) = u.shape();
    let (n, _) = v.shape();
    let mut out = Matrix::zeros(m, n);
    for k in 0..r {
        let s = singular_values[k];
        for i in 0..m {
            let uik = u[(i, k)] * s;
            if uik == 0.0 {
                continue;
            }
            for j in 0..n {
                out[(i, j)] += uik * v[(j, k)];
            }
        }
    }
    out
}

/// Normalizes a singular-value spectrum so the largest value is 1
/// (the exact presentation of the paper's Figure 1).
pub fn normalized_spectrum(singular_values: &[f64]) -> Vec<f64> {
    let max = singular_values.iter().fold(0.0f64, |m, &s| m.max(s));
    if max == 0.0 {
        return vec![0.0; singular_values.len()];
    }
    singular_values.iter().map(|&s| s / max).collect()
}

/// The smallest `r` such that the top-`r` singular values capture at
/// least `energy_fraction` of the total squared spectrum.
///
/// This is the usual operational definition of "effective rank" backing
/// the paper's low-rank claim.
pub fn effective_rank(singular_values: &[f64], energy_fraction: f64) -> usize {
    assert!(
        (0.0..=1.0).contains(&energy_fraction),
        "energy fraction must be in [0,1]"
    );
    let total: f64 = singular_values.iter().map(|s| s * s).sum();
    if total == 0.0 {
        return 0;
    }
    let mut acc = 0.0;
    for (idx, s) in singular_values.iter().enumerate() {
        acc += s * s;
        if acc >= energy_fraction * total {
            return idx + 1;
        }
    }
    singular_values.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} !~ {b}");
    }

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert_close(x[0], 1.0, 1e-12);
        assert_close(x[1], 3.0, 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the initial diagonal forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_close(x[0], 3.0, 1e-12);
        assert_close(x[1], 2.0, 1e-12);
    }

    #[test]
    fn solve_singular_returns_none() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn solve_residual_small_on_random_system() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let a = Matrix::from_fn(8, 8, |_, _| crate::stats::normal_sample(&mut rng, 0.0, 1.0));
        let b: Vec<f64> = (0..8).map(|i| i as f64).collect();
        let x = solve(&a, &b).expect("random matrix should be invertible");
        // Residual ‖Ax − b‖ must be tiny.
        for i in 0..8 {
            let mut acc = 0.0;
            for j in 0..8 {
                acc += a[(i, j)] * x[j];
            }
            assert_close(acc, b[i], 1e-8);
        }
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let (q, r) = qr(&a);
        let qr_prod = q.matmul(&r);
        assert!(qr_prod.sub(&a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn qr_columns_orthonormal() {
        let a = Matrix::from_rows(&[
            &[2.0, -1.0, 0.5],
            &[0.0, 3.0, 1.0],
            &[1.0, 1.0, 1.0],
            &[4.0, 0.0, -2.0],
        ]);
        let (q, _) = qr(&a);
        let qtq = q.transpose().matmul(&q);
        let id = Matrix::identity(3);
        assert!(qtq.sub(&id).frobenius_norm() < 1e-10);
    }

    #[test]
    fn qr_handles_rank_deficiency() {
        // Third column = first + second.
        let a = Matrix::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 1.0], &[1.0, 1.0, 2.0]]);
        let (q, r) = qr(&a);
        assert!(q.matmul(&r).sub(&a).frobenius_norm() < 1e-9);
        assert!(r[(2, 2)].abs() < 1e-9, "dependent column should zero out");
    }

    #[test]
    fn low_rank_of_rank_one_matrix_is_exact() {
        // A = u vᵀ with u = [1,2], v = [3,4]; σ1 = |u||v|.
        let a = Matrix::from_rows(&[&[3.0, 4.0], &[6.0, 8.0]]);
        let svd = crate::svd::jacobi_svd(&a);
        let approx = low_rank_approximation(&svd.u, &svd.singular_values, &svd.v, 1);
        assert!(approx.sub(&a).frobenius_norm() < 1e-10);
    }

    #[test]
    fn normalized_spectrum_peaks_at_one() {
        let spec = normalized_spectrum(&[10.0, 5.0, 1.0]);
        assert_eq!(spec[0], 1.0);
        assert_close(spec[1], 0.5, 1e-12);
        assert_close(spec[2], 0.1, 1e-12);
    }

    #[test]
    fn normalized_spectrum_of_zeros() {
        assert_eq!(normalized_spectrum(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn effective_rank_thresholds() {
        // Energies: 100, 1 → total 101.
        let sv = [10.0, 1.0];
        assert_eq!(effective_rank(&sv, 0.9), 1);
        assert_eq!(effective_rank(&sv, 0.999), 2);
        assert_eq!(effective_rank(&[0.0], 0.9), 0);
    }

    #[test]
    #[should_panic(expected = "energy fraction")]
    fn effective_rank_validates_fraction() {
        effective_rank(&[1.0], 1.5);
    }
}
