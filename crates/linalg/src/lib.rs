//! # dmf-linalg
//!
//! Dense linear-algebra substrate for the DMFSGD reproduction.
//!
//! The DMFSGD paper (Liao et al., CoNEXT 2011) relies on the empirical
//! observation that pairwise network-performance matrices have *low
//! effective rank* (its Figure 1), and its centralized baselines require
//! factorizing such matrices directly. This crate provides everything
//! those analyses need, built from scratch on `std`:
//!
//! * [`Matrix`] — a row-major dense `f64` matrix with the small set of
//!   operations the project needs (transpose, matmul, norms, maps).
//! * [`Mask`] — an observation mask marking which entries of a pairwise
//!   measurement matrix are known (diagonals are never observed; real
//!   datasets have missing entries).
//! * [`kernels`] — the allocation-free hot-path primitives: fused
//!   [`kernels::dot`]/[`kernels::axpby`] and the inline [`CoordVec`]
//!   coordinate type backing every per-measurement SGD update.
//! * [`simd`] — the runtime-dispatched kernel implementations behind
//!   [`kernels`] and [`Matrix::matmul_nt`]: an AVX2+FMA path, a
//!   portable unrolled fallback, and the scalar reference they are
//!   both bitwise-pinned against (the lane-split-4 accumulation
//!   contract).
//! * [`svd`] — singular value decomposition: an exact one-sided Jacobi
//!   SVD for small/medium matrices and a randomized subspace iteration
//!   for the top-k spectrum of large matrices (Figure 1 uses a
//!   2255 × 2255 RTT matrix).
//! * [`decomp`] — QR (modified Gram–Schmidt), low-rank truncation and
//!   effective-rank utilities.
//! * [`stats`] — percentiles, medians and the scalar statistics used
//!   throughout the evaluation, plus Box–Muller normal sampling (the
//!   `rand` crate alone does not ship a normal distribution).
//!
//! Everything is deterministic given a seed — including across SIMD
//! dispatch paths, which are bitwise-identical by contract. The only
//! global state is the cached kernel-dispatch decision in [`simd`].
//!
//! # Position in the workspace
//!
//! `dmf-linalg` is the root of the crate DAG — it depends on nothing
//! but the vendored `rand`/`serde`. Every other crate builds on it:
//! `dmf-datasets` stores pairwise measurements in a [`Matrix`] with a
//! [`Mask`], `dmf-core` evaluates predictions into one, and
//! `dmf-bench` regenerates the paper's Figure 1 from [`svd`].

// `deny` rather than `forbid`: the `simd` module carries the crate's
// only `#[allow(unsafe_code)]`, scoped to the `std::arch` intrinsic
// implementations behind runtime feature detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod decomp;
pub mod kernels;
pub mod mask;
pub mod matrix;
#[deny(missing_docs)]
pub mod simd;
pub mod stats;
pub mod svd;

pub use kernels::CoordVec;
pub use mask::Mask;
pub use matrix::{Matrix, ShapeError};
