//! Scalar statistics and random-variate helpers.
//!
//! Percentiles drive the paper's classification thresholds (`τ` is set
//! to the median of each dataset by default; Table 1 sweeps the 10th to
//! 90th percentiles). `rand` 0.8 ships no normal distribution, so the
//! Box–Muller transform lives here and is reused by the dataset
//! generators for log-normal RTT jitter.

use rand::Rng;

/// Arithmetic mean. Returns 0.0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance. Returns 0.0 for slices of length < 2.
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / values.len() as f64
}

/// Population standard deviation.
pub fn std_dev(values: &[f64]) -> f64 {
    variance(values).sqrt()
}

/// Percentile with linear interpolation between order statistics
/// (the "exclusive" convention used by most numeric packages).
///
/// `p` is in `[0, 100]`.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    percentile_of_sorted(&sorted, p)
}

/// Percentile of an already-sorted slice (ascending).
pub fn percentile_of_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median (50th percentile).
pub fn median(values: &[f64]) -> f64 {
    percentile(values, 50.0)
}

/// A standard-normal sample via the Box–Muller transform.
pub fn normal_sample(rng: &mut (impl Rng + ?Sized), mu: f64, sigma: f64) -> f64 {
    // Avoid ln(0) by sampling u1 from (0, 1].
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mu + sigma * z
}

/// A log-normal sample: `exp(N(mu, sigma))`.
///
/// `mu`/`sigma` are the parameters of the underlying normal, i.e. the
/// median of the distribution is `exp(mu)`.
pub fn log_normal_sample(rng: &mut (impl Rng + ?Sized), mu: f64, sigma: f64) -> f64 {
    normal_sample(rng, mu, sigma).exp()
}

/// Summary statistics bundle used by dataset calibration tests and the
/// experiment harness output.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes a summary over `values`.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of empty slice");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        Self {
            count: values.len(),
            min,
            max,
            mean: mean(values),
            median: median(values),
            std_dev: std_dev(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn variance_and_std_dev() {
        let v = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((variance(&v) - 4.0).abs() < 1e-12);
        assert!((std_dev(&v) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 3.0);
        assert_eq!(percentile(&v, 50.0), 2.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 25.0), 2.5);
        assert_eq!(percentile(&v, 75.0), 7.5);
    }

    #[test]
    fn median_even_length() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    #[should_panic(expected = "empty slice")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_range_checked() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| normal_sample(&mut rng, 3.0, 2.0))
            .collect();
        assert!((mean(&samples) - 3.0).abs() < 0.1);
        assert!((std_dev(&samples) - 2.0).abs() < 0.1);
    }

    #[test]
    fn log_normal_median_is_exp_mu() {
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| log_normal_sample(&mut rng, 2.0, 0.5))
            .collect();
        let med = median(&samples);
        assert!(
            (med - 2.0f64.exp()).abs() < 0.25,
            "median {med} vs expected {}",
            2.0f64.exp()
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn summary_consistency() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
    }
}
