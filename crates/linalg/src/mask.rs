//! Observation masks over pairwise measurement matrices.
//!
//! The paper's weight matrix `W` (eq. 1) has `w_ij = 1` when `x_ij` is
//! known and `0` otherwise. The diagonal of a pairwise performance
//! matrix is never measured, and real datasets (HP-S3) additionally have
//! missing off-diagonal entries. [`Mask`] captures exactly that and is
//! stored independently of the value matrix so a single ground-truth
//! matrix can be combined with many sampling patterns.

use crate::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A boolean observation mask with the same shape as its value matrix.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Mask {
    rows: usize,
    cols: usize,
    known: Vec<bool>,
}

impl Mask {
    /// All entries unknown.
    pub fn none(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            known: vec![false; rows * cols],
        }
    }

    /// All entries known except the diagonal (the usual starting point
    /// for a full pairwise dataset).
    pub fn full_off_diagonal(n: usize) -> Self {
        let mut m = Self::none(n, n);
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    m.set(i, j, true);
                }
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Is entry `(i, j)` observed?
    pub fn is_known(&self, i: usize, j: usize) -> bool {
        assert!(i < self.rows && j < self.cols, "mask index out of bounds");
        self.known[i * self.cols + j]
    }

    /// Marks entry `(i, j)` as observed (`true`) or missing (`false`).
    pub fn set(&mut self, i: usize, j: usize, value: bool) {
        assert!(i < self.rows && j < self.cols, "mask index out of bounds");
        self.known[i * self.cols + j] = value;
    }

    /// Number of observed entries.
    pub fn count_known(&self) -> usize {
        self.known.iter().filter(|&&b| b).count()
    }

    /// Fraction of observed entries among off-diagonal positions.
    pub fn off_diagonal_density(&self) -> f64 {
        let off_diag = (self.rows * self.cols).saturating_sub(self.rows.min(self.cols));
        if off_diag == 0 {
            return 0.0;
        }
        let known = self.iter_known().filter(|&(i, j)| i != j).count();
        known as f64 / off_diag as f64
    }

    /// Iterates over observed `(i, j)` positions in row-major order.
    pub fn iter_known(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.cols;
        self.known
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(move |(idx, _)| (idx / cols, idx % cols))
    }

    /// Randomly hides `fraction` of the currently-known off-diagonal
    /// entries (models datasets with missing measurements, e.g. the 4 %
    /// missing entries of HP-S3).
    pub fn drop_random(&mut self, fraction: f64, rng: &mut impl Rng) {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be within [0,1], got {fraction}"
        );
        for idx in 0..self.known.len() {
            let (i, j) = (idx / self.cols, idx % self.cols);
            if i != j && self.known[idx] && rng.gen::<f64>() < fraction {
                self.known[idx] = false;
            }
        }
    }

    /// Builds the paper's 0/1 weight matrix `W`.
    pub fn to_weight_matrix(&self) -> Matrix {
        Matrix::from_fn(self.rows, self.cols, |i, j| {
            if self.is_known(i, j) {
                1.0
            } else {
                0.0
            }
        })
    }

    /// Applies the mask to a matrix: unknown entries are replaced with
    /// `fill` (typically 0.0). Shapes must match.
    pub fn apply(&self, m: &Matrix, fill: f64) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            m.shape(),
            "mask/matrix shape mismatch"
        );
        m.map_indexed(|i, j, v| if self.is_known(i, j) { v } else { fill })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn none_has_no_known_entries() {
        let m = Mask::none(3, 3);
        assert_eq!(m.count_known(), 0);
        assert_eq!(m.off_diagonal_density(), 0.0);
    }

    #[test]
    fn full_off_diagonal_excludes_diag() {
        let m = Mask::full_off_diagonal(4);
        assert_eq!(m.count_known(), 12);
        for i in 0..4 {
            assert!(!m.is_known(i, i));
        }
        assert!((m.off_diagonal_density() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_and_get() {
        let mut m = Mask::none(2, 2);
        m.set(0, 1, true);
        assert!(m.is_known(0, 1));
        assert!(!m.is_known(1, 0));
        m.set(0, 1, false);
        assert_eq!(m.count_known(), 0);
    }

    #[test]
    fn iter_known_order() {
        let mut m = Mask::none(2, 2);
        m.set(1, 0, true);
        m.set(0, 1, true);
        let known: Vec<_> = m.iter_known().collect();
        assert_eq!(known, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn drop_random_removes_roughly_fraction() {
        let mut m = Mask::full_off_diagonal(60);
        let before = m.count_known();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        m.drop_random(0.25, &mut rng);
        let removed = before - m.count_known();
        let expected = before as f64 * 0.25;
        assert!(
            (removed as f64 - expected).abs() < expected * 0.25,
            "removed {removed}, expected ~{expected}"
        );
    }

    #[test]
    fn drop_random_zero_is_noop() {
        let mut m = Mask::full_off_diagonal(10);
        let before = m.count_known();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        m.drop_random(0.0, &mut rng);
        assert_eq!(m.count_known(), before);
    }

    #[test]
    fn weight_matrix_matches_mask() {
        let mut m = Mask::none(2, 2);
        m.set(0, 1, true);
        let w = m.to_weight_matrix();
        assert_eq!(w[(0, 1)], 1.0);
        assert_eq!(w[(1, 1)], 0.0);
    }

    #[test]
    fn apply_fills_unknown() {
        let mut mask = Mask::none(2, 2);
        mask.set(0, 0, true);
        let m = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let filled = mask.apply(&m, -1.0);
        assert_eq!(filled[(0, 0)], 5.0);
        assert_eq!(filled[(0, 1)], -1.0);
        assert_eq!(filled[(1, 1)], -1.0);
    }

    #[test]
    #[should_panic(expected = "fraction must be within")]
    fn drop_random_validates_fraction() {
        let mut m = Mask::none(2, 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        m.drop_random(1.5, &mut rng);
    }
}
