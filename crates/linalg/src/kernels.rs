//! Allocation-free hot-path kernels and the inline coordinate vector.
//!
//! The DMFSGD per-measurement work is O(r) vector arithmetic on
//! rank-`r` coordinates (paper §5.2, r = 10 by default). At millions
//! of updates per second the dominant costs are not the flops but the
//! heap traffic of `Vec<f64>` clones and the pointer chasing of
//! scattered allocations. This module provides:
//!
//! * [`dot`] / [`axpby`] — the two primitive kernels every update rule
//!   is built from. Both accumulate **in index order**, so results are
//!   bitwise-identical to the textbook loops they replace.
//! * [`CoordVec`] — a fixed-capacity inline vector: ranks up to
//!   [`MAX_INLINE_RANK`] live entirely inside the value (no heap);
//!   larger ranks (the Figure-4 `r = 100` sweep) transparently spill
//!   to a heap `Vec`. Cloning an inline `CoordVec` is a `memcpy`,
//!   which is what makes a probe/reply cycle allocation-free.

use serde::{DeError, Deserialize, Serialize, Value};
use std::ops::{Deref, DerefMut};

/// Largest rank stored inline (the paper's default is 10; Figure 4
/// shows small ranks suffice, so the spill path is cold).
pub const MAX_INLINE_RANK: usize = 16;

/// Dot product `Σ a[i]·b[i]`, fused-multiply-accumulated in the
/// **lane-split-4** order pinned by [`crate::simd`]: four interleaved
/// fma chains (lane `c` takes the elements with index ≡ `c` mod 4),
/// combined as `(acc₀+acc₂)+(acc₁+acc₃)`, then a sequential fma tail
/// for the last `len mod 4` elements.
///
/// The fused form costs one rounding per element instead of two and
/// maps to one `vfmadd` per four elements. The accumulation order is
/// the contract: the batched [`crate::Matrix::matmul_nt`] evaluates
/// the same chain per entry, so batched and per-pair score evaluation
/// are bitwise identical — and so are the AVX2, portable and scalar
/// dispatch paths (see [`crate::simd`] for the contract, its history
/// and the quantified diff against the pre-SIMD sequential chain).
///
/// # Panics
/// Panics when the lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "coordinate rank mismatch");
    crate::simd::dot_dispatch(a, b)
}

/// Fused scale-and-axpy: `y[i] ← fma(beta, y[i], alpha·x[i])`.
///
/// One pass over both slices — the whole SGD update (shrinkage plus
/// gradient step) in a single kernel. Element-independent, so the
/// AVX2 path in [`crate::simd`] is bitwise identical to the scalar
/// loop (this contract is unchanged from the pre-SIMD kernels).
///
/// # Panics
/// Panics when the lengths differ.
#[inline]
pub fn axpby(y: &mut [f64], beta: f64, alpha: f64, x: &[f64]) {
    assert_eq!(y.len(), x.len(), "coordinate rank mismatch");
    crate::simd::axpby_dispatch(y, beta, alpha, x);
}

/// `out ← lhs · rhsᵀ` from caller-packed slices — the allocation-free
/// twin of [`crate::Matrix::matmul_nt_into`] for callers that already
/// hold the operands as flat row-major data (e.g. coordinates gathered
/// from per-node storage into [`crate::simd::with_aligned_scratch`]).
///
/// * `lhs` is `rows × inner` row-major,
/// * `rhs` is `cols × inner` row-major (the **un**transposed operand —
///   the kernels read it for sub-tile column tails),
/// * `rhs_t` is `inner × cols` row-major, i.e. `rhs` transposed. The
///   tile kernels stream it with vector loads, so pack it into
///   64-byte-aligned storage (see
///   [`with_aligned_scratch`](crate::simd::with_aligned_scratch)) —
///   an allocator-placed buffer can silently cost double-digit
///   percent on cache-line-straddling loads.
///
/// `out` is resized to `rows × cols`, reusing its allocation. Bits are
/// identical to [`crate::Matrix::matmul_nt`] — same dispatch, same
/// lane-split-4 contract on every path.
///
/// # Panics
/// Panics when a slice length disagrees with the stated shape.
pub fn matmul_nt_packed_into(
    lhs: &[f64],
    rhs: &[f64],
    rhs_t: &[f64],
    rows: usize,
    inner: usize,
    cols: usize,
    out: &mut crate::Matrix,
) {
    assert_eq!(lhs.len(), rows * inner, "lhs length vs rows×inner");
    assert_eq!(rhs.len(), cols * inner, "rhs length vs cols×inner");
    assert_eq!(rhs_t.len(), inner * cols, "rhs_t length vs inner×cols");
    let mut data = out.take_data();
    if inner == 0 {
        data.clear();
        data.resize(rows * cols, 0.0);
    } else {
        crate::simd::matmul_nt_dispatch(lhs, rhs, rhs_t, rows, inner, cols, &mut data);
    }
    *out = crate::Matrix::from_vec(rows, cols, data);
}

/// A rank-`r` coordinate vector, inline for `r ≤ 16`.
///
/// Dereferences to `[f64]`, so it drops into every API that consumes
/// slices. `PartialEq` compares element-wise regardless of storage.
#[derive(Clone, Debug)]
pub enum CoordVec {
    /// Rank ≤ [`MAX_INLINE_RANK`]: the elements live in the value.
    Inline {
        /// Number of live elements in `data`.
        len: u32,
        /// Element storage; entries past `len` are zero padding.
        data: [f64; MAX_INLINE_RANK],
    },
    /// Rank > [`MAX_INLINE_RANK`]: heap fallback.
    Spilled(Vec<f64>),
}

impl CoordVec {
    /// A zero vector of the given rank.
    pub fn zeros(rank: usize) -> Self {
        if rank <= MAX_INLINE_RANK {
            CoordVec::Inline {
                len: rank as u32,
                data: [0.0; MAX_INLINE_RANK],
            }
        } else {
            CoordVec::Spilled(vec![0.0; rank])
        }
    }

    /// Builds a vector of `rank` elements from `f(i)`, evaluated in
    /// index order (so RNG-backed initializers draw identically to the
    /// `Vec` code they replace).
    pub fn from_fn(rank: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        let mut v = Self::zeros(rank);
        for (i, slot) in v.iter_mut().enumerate() {
            *slot = f(i);
        }
        v
    }

    /// Copies a slice.
    pub fn from_slice(s: &[f64]) -> Self {
        Self::from_fn(s.len(), |i| s[i])
    }

    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        match self {
            CoordVec::Inline { len, data } => &data[..*len as usize],
            CoordVec::Spilled(v) => v,
        }
    }

    /// The elements as a mutable slice.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        match self {
            CoordVec::Inline { len, data } => &mut data[..*len as usize],
            CoordVec::Spilled(v) => v,
        }
    }

    /// True when the elements are stored inline (no heap).
    pub fn is_inline(&self) -> bool {
        matches!(self, CoordVec::Inline { .. })
    }

    /// Copies out to a plain `Vec` (wire encoding, interop).
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_slice().to_vec()
    }
}

impl Deref for CoordVec {
    type Target = [f64];
    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl DerefMut for CoordVec {
    #[inline]
    fn deref_mut(&mut self) -> &mut [f64] {
        self.as_mut_slice()
    }
}

impl PartialEq for CoordVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<f64>> for CoordVec {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<Vec<f64>> for CoordVec {
    fn from(v: Vec<f64>) -> Self {
        if v.len() <= MAX_INLINE_RANK {
            Self::from_slice(&v)
        } else {
            CoordVec::Spilled(v)
        }
    }
}

impl Serialize for CoordVec {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl Deserialize for CoordVec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<f64>::from_value(v).map(CoordVec::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_matches_reference() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        assert_eq!(dot(&a, &b), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn dot_is_bitwise_lane_split_4() {
        // Contract v2 (re-pinned with the SIMD kernels): four
        // interleaved fma chains, combined (acc0+acc2)+(acc1+acc3),
        // sequential fma tail. See crate::simd for the rationale.
        let a = [0.1f64, 0.2, 0.3, 0.4, 0.5, 0.6];
        let b = [1.7f64, -2.3, 0.9, 4.1, -0.7, 2.2];
        let mut acc = [0.0f64; 4];
        for c in 0..4 {
            acc[c] = a[c].mul_add(b[c], acc[c]);
        }
        let mut combined = (acc[0] + acc[2]) + (acc[1] + acc[3]);
        for k in 4..6 {
            combined = a[k].mul_add(b[k], combined);
        }
        assert_eq!(dot(&a, &b).to_bits(), combined.to_bits());
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpby_matches_reference() {
        let mut y = [1.0, 2.0];
        axpby(&mut y, 0.99, -0.2, &[1.0, 1.0]);
        assert!((y[0] - (0.99 - 0.2)).abs() < 1e-15);
        assert!((y[1] - (1.98 - 0.2)).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn axpby_length_mismatch_panics() {
        axpby(&mut [1.0], 1.0, 1.0, &[1.0, 2.0]);
    }

    #[test]
    fn coordvec_inline_until_cap() {
        for rank in [1, 10, MAX_INLINE_RANK] {
            let v = CoordVec::from_fn(rank, |i| i as f64);
            assert!(v.is_inline(), "rank {rank} must be inline");
            assert_eq!(v.len(), rank);
        }
        let big = CoordVec::from_fn(MAX_INLINE_RANK + 1, |i| i as f64);
        assert!(!big.is_inline());
        assert_eq!(big.len(), MAX_INLINE_RANK + 1);
    }

    #[test]
    fn coordvec_slice_roundtrip() {
        let v = CoordVec::from_slice(&[1.5, -2.0, 3.25]);
        assert_eq!(&*v, &[1.5, -2.0, 3.25]);
        assert_eq!(v.to_vec(), vec![1.5, -2.0, 3.25]);
        let mut w = v.clone();
        w[1] = 9.0;
        assert_eq!(&*w, &[1.5, 9.0, 3.25]);
        assert_ne!(w, v);
    }

    #[test]
    fn coordvec_eq_across_storage() {
        let inline = CoordVec::from_fn(3, |i| i as f64);
        let spilled = CoordVec::Spilled(vec![0.0, 1.0, 2.0]);
        assert_eq!(inline, spilled);
        assert_eq!(inline, vec![0.0, 1.0, 2.0]);
    }

    #[test]
    fn coordvec_from_vec_inlines_small() {
        let v: CoordVec = vec![1.0; 8].into();
        assert!(v.is_inline());
        let w: CoordVec = vec![1.0; 40].into();
        assert!(!w.is_inline());
    }

    #[test]
    fn coordvec_serde_roundtrip_as_plain_array() {
        let v = CoordVec::from_slice(&[1.0, 2.5, -3.0]);
        let json = serde_json::to_string(&v).unwrap();
        assert_eq!(json, "[1,2.5,-3]");
        let back: CoordVec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, v);
        // Interop: a CoordVec reads back anything a Vec<f64> wrote.
        let from_vec: CoordVec = serde_json::from_str("[4,5]").unwrap();
        assert_eq!(from_vec, vec![4.0, 5.0]);
    }
}
