//! Property-based tests for the linear-algebra substrate.

use dmf_linalg::decomp::{effective_rank, normalized_spectrum, qr};
use dmf_linalg::stats::{percentile, percentile_of_sorted};
use dmf_linalg::svd::jacobi_svd;
use dmf_linalg::Matrix;
use proptest::prelude::*;

fn small_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f64..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in small_matrix(8)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_right(m in small_matrix(8)) {
        let id = Matrix::identity(m.cols());
        let prod = m.matmul(&id);
        prop_assert!(prod.sub(&m).frobenius_norm() < 1e-9);
    }

    #[test]
    fn frobenius_norm_nonnegative_and_zero_only_for_zero(m in small_matrix(6)) {
        let norm = m.frobenius_norm();
        prop_assert!(norm >= 0.0);
        if norm == 0.0 {
            prop_assert!(m.as_slice().iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn svd_singular_values_sorted_and_nonnegative(m in small_matrix(7)) {
        let svd = jacobi_svd(&m);
        for w in svd.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
        prop_assert!(svd.singular_values.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn svd_reconstructs(m in small_matrix(7)) {
        let svd = jacobi_svd(&m);
        let err = svd.reconstruct().sub(&m).frobenius_norm();
        let scale = m.frobenius_norm().max(1.0);
        prop_assert!(err / scale < 1e-7, "relative reconstruction error {}", err / scale);
    }

    #[test]
    fn svd_largest_singular_value_bounds_frobenius(m in small_matrix(6)) {
        // σ₁ ≤ ‖A‖_F ≤ sqrt(p)·σ₁
        let svd = jacobi_svd(&m);
        let s1 = svd.singular_values[0];
        let fro = m.frobenius_norm();
        let p = svd.singular_values.len() as f64;
        prop_assert!(s1 <= fro + 1e-9);
        prop_assert!(fro <= p.sqrt() * s1 + 1e-9);
    }

    #[test]
    fn qr_reconstruction(m in small_matrix(6)) {
        let (q, r) = qr(&m);
        let err = q.matmul(&r).sub(&m).frobenius_norm();
        let scale = m.frobenius_norm().max(1.0);
        prop_assert!(err / scale < 1e-8);
    }

    #[test]
    fn normalized_spectrum_in_unit_interval(
        sv in proptest::collection::vec(0.0f64..1e6, 1..20)
    ) {
        let mut sorted = sv.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let spec = normalized_spectrum(&sorted);
        prop_assert!(spec.iter().all(|&s| (0.0..=1.0 + 1e-12).contains(&s)));
    }

    #[test]
    fn effective_rank_monotone_in_energy(
        sv in proptest::collection::vec(0.01f64..100.0, 1..15)
    ) {
        let mut sorted = sv.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let r_low = effective_rank(&sorted, 0.5);
        let r_high = effective_rank(&sorted, 0.99);
        prop_assert!(r_low <= r_high);
        prop_assert!(r_high <= sorted.len());
    }

    #[test]
    fn percentile_monotone_in_p(
        values in proptest::collection::vec(-1e4f64..1e4, 1..50),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(percentile(&values, lo) <= percentile(&values, hi) + 1e-9);
    }

    #[test]
    fn percentile_within_range(
        values in proptest::collection::vec(-1e4f64..1e4, 1..50),
        p in 0.0f64..100.0,
    ) {
        let v = percentile(&values, p);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(v >= min - 1e-9 && v <= max + 1e-9);
    }

    #[test]
    fn percentile_of_sorted_agrees(
        values in proptest::collection::vec(-1e4f64..1e4, 1..50),
        p in 0.0f64..100.0,
    ) {
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(percentile(&values, p), percentile_of_sorted(&sorted, p));
    }
}
