//! Differential conformance suite for the SIMD kernel dispatch paths.
//!
//! The lane-split-4 contract (see `dmf_linalg::simd`) promises that the
//! scalar reference, the portable unrolled fallback, the AVX2 path and
//! the AVX-512 matmul tiles produce **bitwise identical** results for
//! `dot`, `axpby` and `matmul_nt` — over *any* input, including
//! denormals, signed zeros, NaN, infinities, every rank 1..=32 and
//! unaligned slices. This suite
//! is what makes the SIMD kernels shippable: if a path ever diverges by
//! one bit, a property here fails.
//!
//! One deliberate carve-out: when a result is NaN, the *payload* bits
//! are not part of the contract (all paths must agree that it is NaN,
//! and they do — every element enters the accumulation through one
//! hardware fma — but IEEE-754 does not pin which NaN an invalid
//! operation returns, so we don't either).
//!
//! The suite also quantifies the one-time golden re-pin from the v1
//! (sequential-chain) contract to v2: same single-fma-per-element error
//! bound, different rounding order, difference bounded by
//! `n · ε · Σ|aᵢ·bᵢ|`.

use dmf_linalg::simd::{
    self, avx2_available, avx512_available, axpby_avx2, axpby_portable, axpby_reference, dot_avx2,
    dot_portable, dot_reference, matmul_nt_reference, Dispatch,
};
use dmf_linalg::Matrix;
use proptest::prelude::*;

/// Adversarial scalar: normals across the full dynamic range, plus the
/// IEEE-754 specials the contract must survive (±0.0, denormals, ±∞,
/// NaN).
fn adversarial_f64() -> impl Strategy<Value = f64> {
    // (The vendored prop_oneof! is unweighted — repeating the normal
    // range tilts the mix toward ordinary values.)
    prop_oneof![
        -1e6f64..1e6f64,
        -1e6f64..1e6f64,
        -1e6f64..1e6f64,
        -1e6f64..1e6f64,
        -1e6f64..1e6f64,
        -1e6f64..1e6f64,
        (-60i32..60).prop_map(|e| (e as f64).exp2()),
        (-60i32..60).prop_map(|e| -(e as f64).exp2()),
        Just(0.0f64),
        Just(-0.0f64),
        Just(f64::MIN_POSITIVE / 8.0),     // denormal
        Just(-f64::MIN_POSITIVE / 1024.0), // denormal
        Just(f64::INFINITY),
        Just(f64::NEG_INFINITY),
        Just(f64::NAN),
        Just(1e300f64),
        Just(-1e300f64),
    ]
}

fn vec_pair(max_len: usize) -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (0..=max_len).prop_flat_map(|n| {
        (
            proptest::collection::vec(adversarial_f64(), n),
            proptest::collection::vec(adversarial_f64(), n),
        )
    })
}

/// Bitwise equality modulo NaN payloads.
fn same_bits(x: f64, y: f64, ctx: &str) -> Result<(), TestCaseError> {
    if x.is_nan() && y.is_nan() {
        return Ok(());
    }
    prop_assert_eq!(x.to_bits(), y.to_bits(), "{}: {} vs {}", ctx, x, y);
    Ok(())
}

/// Copies `v` into a fresh buffer at an element offset that breaks
/// 32-byte alignment, returning the buffer (the caller slices
/// `[1..1+n]`). `Vec<f64>` is 8-byte aligned; shifting by one element
/// guarantees the slice is *not* 32-byte aligned whenever the base is.
fn unalign(v: &[f64]) -> Vec<f64> {
    let mut buf = vec![0.0; v.len() + 1];
    buf[1..].copy_from_slice(v);
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dot_paths_bitwise_identical((a, b) in vec_pair(32)) {
        let want = dot_reference(&a, &b);
        same_bits(dot_portable(&a, &b), want, "portable")?;
        if avx2_available() {
            same_bits(dot_avx2(&a, &b), want, "avx2")?;
        }
        // Unaligned views of the same data take the same bits.
        let (ua, ub) = (unalign(&a), unalign(&b));
        same_bits(dot_portable(&ua[1..], &ub[1..]), want, "portable unaligned")?;
        if avx2_available() {
            same_bits(dot_avx2(&ua[1..], &ub[1..]), want, "avx2 unaligned")?;
        }
    }

    #[test]
    fn axpby_paths_bitwise_identical(
        (x, y) in vec_pair(32),
        beta in adversarial_f64(),
        alpha in adversarial_f64(),
    ) {
        let mut want = y.clone();
        axpby_reference(&mut want, beta, alpha, &x);
        let mut got = y.clone();
        axpby_portable(&mut got, beta, alpha, &x);
        for i in 0..want.len() {
            same_bits(got[i], want[i], "portable")?;
        }
        if avx2_available() {
            let ux = unalign(&x);
            let mut uy = unalign(&y);
            axpby_avx2(&mut uy[1..], beta, alpha, &ux[1..]);
            for i in 0..want.len() {
                same_bits(uy[1 + i], want[i], "avx2 unaligned")?;
            }
        }
    }

    #[test]
    fn matmul_nt_paths_bitwise_identical(
        rows in 1usize..6,
        inner in 1usize..33,
        cols in 1usize..19,
        seed in any::<u64>(),
    ) {
        // Deterministic adversarial fill mixing magnitudes, signed
        // zeros and denormals (NaN/∞ are covered by the dot property —
        // matmul entries *are* dots by the batched≡per-pair law below).
        let fill = |count: usize, salt: u64| -> Vec<f64> {
            (0..count)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add(seed ^ salt);
                    match h % 11 {
                        0 => 0.0,
                        1 => -0.0,
                        2 => f64::MIN_POSITIVE / 2.0,
                        3 => 1e300,
                        4 => -1e300,
                        _ => ((h >> 11) as f64 / (1u64 << 40) as f64) - 4000.0,
                    }
                })
                .collect()
        };
        let lhs = Matrix::from_vec(rows, inner, fill(rows * inner, 1));
        let rhs = Matrix::from_vec(cols, inner, fill(cols * inner, 2));

        let mut want = Vec::new();
        matmul_nt_reference(lhs.as_slice(), rhs.as_slice(), rows, inner, cols, &mut want);

        for path in [Dispatch::Portable, Dispatch::Avx2, Dispatch::Avx512] {
            if (path == Dispatch::Avx2 && !avx2_available())
                || (path == Dispatch::Avx512 && !avx512_available())
            {
                continue;
            }
            simd::set_thread_override(Some(path));
            let got = lhs.matmul_nt(&rhs);
            simd::set_thread_override(None);
            for (idx, (&g, &w)) in got.as_slice().iter().zip(want.iter()).enumerate() {
                same_bits(g, w, &format!("{path:?} entry {idx}"))?;
            }
        }
    }

    /// The packed entry point is the same computation as the `Matrix`
    /// surface: caller-packed slices (including a deliberately
    /// unaligned `rhsᵀ`) produce the same bits on every path.
    #[test]
    fn matmul_nt_packed_into_matches_matrix_surface(
        rows in 1usize..6,
        inner in 0usize..33,
        cols in 1usize..19,
        data in proptest::collection::vec(adversarial_f64(), 6 * 33 + 19 * 33),
    ) {
        let lhs = Matrix::from_fn(rows, inner, |i, j| data[i * inner + j]);
        let rhs = Matrix::from_fn(cols, inner, |i, j| data[6 * 33 + i * inner + j]);
        let want = lhs.matmul_nt(&rhs);

        let mut rhs_t = vec![0.0; inner * cols + 1];
        for j in 0..cols {
            for k in 0..inner {
                rhs_t[1 + k * cols + j] = rhs[(j, k)];
            }
        }
        for path in [Dispatch::Portable, Dispatch::Avx2, Dispatch::Avx512] {
            if (path == Dispatch::Avx2 && !avx2_available())
                || (path == Dispatch::Avx512 && !avx512_available())
            {
                continue;
            }
            simd::set_thread_override(Some(path));
            let mut got = Matrix::zeros(0, 0);
            dmf_linalg::kernels::matmul_nt_packed_into(
                lhs.as_slice(),
                rhs.as_slice(),
                &rhs_t[1..],
                rows,
                inner,
                cols,
                &mut got,
            );
            simd::set_thread_override(None);
            prop_assert_eq!(got.shape(), want.shape());
            for (idx, (&g, &w)) in got.as_slice().iter().zip(want.as_slice()).enumerate() {
                same_bits(g, w, &format!("{path:?} packed entry {idx}"))?;
            }
        }
    }

    #[test]
    fn matmul_nt_entries_equal_per_pair_dot(
        rows in 1usize..6,
        inner in 1usize..33,
        cols in 1usize..12,
        data in proptest::collection::vec(adversarial_f64(), 6 * 33 + 12 * 33),
    ) {
        let lhs = Matrix::from_fn(rows, inner, |i, j| data[i * inner + j]);
        let rhs = Matrix::from_fn(cols, inner, |i, j| data[6 * 33 + i * inner + j]);
        let prod = lhs.matmul_nt(&rhs);
        for i in 0..rows {
            for j in 0..cols {
                same_bits(
                    prod[(i, j)],
                    dmf_linalg::kernels::dot(lhs.row(i), rhs.row(j)),
                    &format!("entry ({i},{j})"),
                )?;
            }
        }
    }

    /// The documented v1→v2 golden re-pin: on finite inputs both
    /// contracts are single-fma-per-element summations of the same
    /// products, so they differ by at most the classic reordering
    /// bound `n · ε · Σ|aᵢ·bᵢ|`.
    #[test]
    fn v2_contract_stays_within_reordering_bound_of_v1(
        (a, b) in (1usize..33).prop_flat_map(|n| (
            proptest::collection::vec(-1e6f64..1e6, n),
            proptest::collection::vec(-1e6f64..1e6, n),
        )),
    ) {
        // v1: sequential chain, product-initialized.
        let mut v1 = a[0] * b[0];
        for i in 1..a.len() {
            v1 = a[i].mul_add(b[i], v1);
        }
        let v2 = dot_reference(&a, &b);
        let magnitude: f64 = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum();
        let bound = a.len() as f64 * f64::EPSILON * magnitude;
        prop_assert!(
            (v1 - v2).abs() <= bound.max(f64::MIN_POSITIVE),
            "v1 {v1} vs v2 {v2}, bound {bound}"
        );
    }
}

#[test]
fn all_ranks_1_to_32_covered_exhaustively() {
    // The proptests sample ranks; this pins every rank deterministically
    // (chunk counts 0..=8, every tail length 0..=3).
    for n in 0..=32usize {
        let a: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) as f64).sin() * 1e3).collect();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 + 1) as f64).cos() * 1e-3).collect();
        let want = dot_reference(&a, &b);
        assert_eq!(dot_portable(&a, &b).to_bits(), want.to_bits(), "rank {n}");
        if avx2_available() {
            assert_eq!(dot_avx2(&a, &b).to_bits(), want.to_bits(), "rank {n}");
        }
    }
}

#[test]
fn nan_and_infinity_propagate_on_every_path() {
    for (a, b) in [
        (vec![1.0, f64::NAN, 3.0, 4.0, 5.0], vec![1.0; 5]),
        (vec![f64::INFINITY, 1.0, 2.0, 3.0], vec![1.0; 4]),
        // ∞ + (-∞) across lanes -> NaN at the combine step.
        (
            vec![f64::INFINITY, f64::NEG_INFINITY, 0.5, 0.5],
            vec![1.0, 1.0, 1.0, 1.0],
        ),
    ] {
        let want = dot_reference(&a, &b);
        let got = dot_portable(&a, &b);
        assert!(
            (want.is_nan() && got.is_nan()) || want.to_bits() == got.to_bits(),
            "portable: {got} vs {want}"
        );
        if avx2_available() {
            let got = dot_avx2(&a, &b);
            assert!(
                (want.is_nan() && got.is_nan()) || want.to_bits() == got.to_bits(),
                "avx2: {got} vs {want}"
            );
        }
    }
}
