//! Integration tests for the tracked scenario quality suite: the
//! determinism contract behind the committed `QUALITY.json`, the CI
//! floor gate at quick scale, and the partition-recovery regression.

use dmf_bench::experiments::scenario::{self, QUALITY_SCHEMA_VERSION};
use dmf_bench::Scale;

#[test]
fn quick_suite_clears_every_floor() {
    // The exact check the CI quality-gate job enforces: if this fails
    // locally, CI is red.
    let report = scenario::run(&Scale::quick(), "test");
    assert_eq!(report.schema_version, QUALITY_SCHEMA_VERSION);
    assert_eq!(report.scale, "quick");
    let names: Vec<&str> = report.scenarios.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "baseline-stationary",
            "drift",
            "flash-congestion",
            "routing-change",
            "partition-loss",
            "churn-under-drift",
            "loss-wire-v2",
        ]
    );
    for s in &report.scenarios {
        assert!(
            s.pass && s.final_auc >= s.auc_floor,
            "{}: final AUC {} below floor {}",
            s.name,
            s.final_auc,
            s.auc_floor
        );
        assert!(!s.windows.is_empty());
        assert!(s.min_auc <= s.final_auc + 1e-12);
    }
    assert!(report.all_pass);
}

#[test]
fn suite_is_byte_deterministic_per_seed() {
    // The committed QUALITY.json is meaningful only if reruns
    // reproduce it bit for bit: every RNG stream (topology, condition
    // realization, probe scheduling, loss draws, churn repair) derives
    // from the registry seeds.
    let a = scenario::run(&Scale::quick(), "det");
    let b = scenario::run(&Scale::quick(), "det");
    let ja = serde_json::to_string_pretty(&a).expect("serialize");
    let jb = serde_json::to_string_pretty(&b).expect("serialize");
    assert_eq!(ja, jb, "two runs of the same registry diverged");
}

#[test]
fn partition_scenario_dips_then_recrosses_08() {
    // Regression pin for the partition-loss scenario: the isolated,
    // lossy island misses a topology re-embedding, so windowed AUC
    // must dip below 0.8 while partitioned — the signal a global
    // end-of-run number cannot show — and re-cross 0.8 after the heal.
    let cases = scenario::registry(&Scale::quick());
    let case = cases
        .iter()
        .find(|c| c.spec.name == "partition-loss")
        .expect("registry has the partition scenario");
    let q = scenario::run_case(case);

    let dip = q
        .windows
        .iter()
        .find(|w| w.auc < 0.8)
        .expect("partition must dip windowed AUC below 0.8");
    let recross = q
        .windows
        .iter()
        .find(|w| w.index > dip.index && w.auc >= 0.8)
        .expect("AUC must re-cross 0.8 after the partition heals");
    assert!(
        recross.t_start_s >= 449.0,
        "recovery at {}s, before the 450s heal",
        recross.t_start_s
    );
    assert!(
        q.final_auc >= 0.8,
        "final-window AUC {} did not recover past 0.8",
        q.final_auc
    );
    // The dip happens during the partition epoch, not at cold start.
    assert!(
        dip.t_start_s >= 180.0,
        "dip at {}s predates the partition",
        dip.t_start_s
    );
}
