//! The parallel sweep driver must be a pure wall-clock optimization:
//! byte-identical results to the serial path, for the generic driver
//! (property-tested) and for a real figure sweep end to end.

use dmf_bench::experiments::fig3;
use dmf_bench::parallel::parallel_map_with;
use dmf_bench::Scale;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parallel_map_is_order_stable_and_exact(
        items in proptest::collection::vec(any::<u64>(), 0..200),
        threads in 1usize..9,
    ) {
        let work = |x: u64| {
            let mut h = x ^ 0xc2b2_ae3d_27d4_eb4f;
            for _ in 0..50 {
                h ^= h >> 29;
                h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
            }
            (x, h, format!("{h:x}"))
        };
        let serial: Vec<_> = items.clone().into_iter().map(work).collect();
        let parallel = parallel_map_with(threads, items, work);
        prop_assert_eq!(parallel, serial);
    }
}

/// A real sweep: Figure 3 at quick scale, serial vs. 4 workers, must
/// serialize to the exact same JSON (the figure seeds every cell
/// independently, so scheduling cannot leak into the numbers).
///
/// This is one `#[test]` in its own integration binary because it
/// pins the environment-independent path via explicit thread counts.
#[test]
fn fig3_parallel_matches_serial_byte_for_byte() {
    // Sub-quick scale: byte-identity needs every cell exercised, not
    // converged accuracy, and this trains 48 systems twice.
    let scale = Scale {
        harvard_nodes: 40,
        meridian_nodes: 50,
        hps3_nodes: 40,
        harvard_measurements: 8_000,
        budget_k_multiplier: 6,
        k_harvard: 8,
        k_meridian: 8,
        k_hps3: 8,
    };
    std::env::set_var("DMF_BENCH_THREADS", "1");
    let serial = serde_json::to_string(&fig3::run(&scale, 3)).expect("serialize serial");
    std::env::set_var("DMF_BENCH_THREADS", "4");
    let parallel = serde_json::to_string(&fig3::run(&scale, 3)).expect("serialize parallel");
    std::env::remove_var("DMF_BENCH_THREADS");
    assert_eq!(serial, parallel, "parallel fig3 sweep diverged from serial");
}
