//! Result persistence: every experiment binary writes its rows as JSON
//! under `results/` so `EXPERIMENTS.md` can cite reproducible numbers.

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Directory experiment outputs are written to (created on demand).
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("DMF_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"));
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serializes `value` to `results/<name>.json` and returns the path.
pub fn write_json<T: Serialize>(name: &str, value: &T) -> PathBuf {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize result");
    fs::write(&path, json).expect("write result");
    path
}

/// Formats a fixed-width table row for stdout.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formats_fixed_width() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }

    #[test]
    fn write_json_roundtrip() {
        std::env::set_var(
            "DMF_RESULTS_DIR",
            std::env::temp_dir().join("dmf-results-test"),
        );
        let path = write_json("unit-test", &vec![1, 2, 3]);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains('1'));
        fs::remove_file(path).ok();
        std::env::remove_var("DMF_RESULTS_DIR");
    }
}
