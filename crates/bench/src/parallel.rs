//! Deterministic parallel sweep driver.
//!
//! The figure sweeps (η×λ grids, robustness levels, per-dataset
//! accuracy runs) are embarrassingly parallel: every cell trains its
//! own system from its own seed and shares nothing but read-only
//! inputs. [`parallel_map`] fans such cells across OS threads with
//! **order-stable, bit-identical** results: the output vector is
//! indexed by input position, so the result is byte-for-byte the same
//! as a serial `map` — only the wall clock changes. A property test
//! pins that equivalence.
//!
//! Built on `std::thread::scope` (no runtime dependency); the worker
//! count comes from `DMF_BENCH_THREADS` or the machine's available
//! parallelism, and one worker short-circuits to a plain serial loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Worker count for sweep fan-out: `DMF_BENCH_THREADS` if set (≥ 1),
/// else [`std::thread::available_parallelism`].
pub fn sweep_threads() -> usize {
    if let Ok(v) = std::env::var("DMF_BENCH_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` using up to `threads` workers, returning
/// results in input order.
///
/// Work is claimed cell-by-cell from a shared counter, so stragglers
/// (e.g. the Meridian cells of a mixed grid) don't serialize behind a
/// static partition. With `threads <= 1` this is exactly
/// `items.into_iter().map(f).collect()`.
pub fn parallel_map_with<I, T, F>(threads: usize, items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let n = items.len();
    let workers = threads.min(n);
    let items: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = items[idx]
                    .lock()
                    .expect("item mutex poisoned")
                    .take()
                    .expect("cell claimed twice");
                let out = f(item);
                *results[idx].lock().expect("result mutex poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .enumerate()
        .map(|(idx, m)| {
            m.into_inner()
                .expect("result mutex poisoned")
                .unwrap_or_else(|| panic!("cell {idx} produced no result"))
        })
        .collect()
}

/// [`parallel_map_with`] at the default [`sweep_threads`] width.
pub fn parallel_map<I, T, F>(items: Vec<I>, f: F) -> Vec<T>
where
    I: Send,
    T: Send,
    F: Fn(I) -> T + Sync,
{
    parallel_map_with(sweep_threads(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let out = parallel_map_with(4, (0..100).collect(), |x: i32| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let work = |x: u64| {
            // Deterministic mixing, a stand-in for training a cell.
            let mut h = x.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            for _ in 0..1000 {
                h ^= h >> 33;
                h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
            }
            h
        };
        let serial = parallel_map_with(1, (0..64).collect(), work);
        for threads in [2, 3, 8] {
            let parallel = parallel_map_with(threads, (0..64).collect(), work);
            assert_eq!(parallel, serial, "{threads} threads diverged");
        }
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u8> = parallel_map_with(8, Vec::<u8>::new(), |x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map_with(8, vec![7], |x: i32| x + 1), vec![8]);
    }

    #[test]
    fn threads_env_override() {
        std::env::set_var("DMF_BENCH_THREADS", "3");
        assert_eq!(sweep_threads(), 3);
        std::env::set_var("DMF_BENCH_THREADS", "0");
        assert_eq!(sweep_threads(), 1);
        std::env::remove_var("DMF_BENCH_THREADS");
        assert!(sweep_threads() >= 1);
    }
}
