//! # dmf-bench
//!
//! Experiment harness regenerating every table and figure of the
//! DMFSGD paper, plus shared infrastructure for the Criterion
//! micro-benchmarks.
//!
//! One binary per artifact (see `src/bin/`): each prints the same
//! rows/series the paper reports and writes a JSON record for
//! `EXPERIMENTS.md`. Absolute numbers differ (the substrate is a
//! calibrated synthetic dataset, not the authors' testbed); the
//! qualitative shape — who wins, where the plateaus and crossovers
//! sit — is asserted by the binaries themselves where the paper makes
//! a claim.
//!
//! The experiment index lives in `DESIGN.md` §5.
//!
//! # Position in the workspace
//!
//! The consumer tip of the DAG: [`experiments`] trains
//! [`dmf_core::Session`] populations on [`dmf_datasets`] bundles,
//! injects label errors from [`dmf_simnet::errors`], compares against
//! [`dmf_baselines`], and reports every number through [`dmf_eval`];
//! [`report`] persists the JSON records the binaries write. Nothing
//! depends on this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod parallel;
pub mod report;

pub use experiments::scale::{flag_value, Scale};
pub use experiments::trio::{DatasetBundle, Trio};
pub use parallel::{parallel_map, parallel_map_with, sweep_threads};
