//! Regenerates Figure 5: ROC, precision–recall, and AUC convergence
//! under the default configuration.

use dmf_bench::experiments::fig5;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let fig = fig5::run(&scale, 42);

    for d in &fig.datasets {
        println!("=== {} ===", d.dataset);
        println!("final AUC: {:.3}", d.final_auc);
        match d.converged_at_times_k {
            Some(t) => println!("converged (92% of final) at {t:.1} × k measurements/node"),
            None => println!("did not reach 92% of final within the budget"),
        }
        let roc_s: Vec<String> = d
            .roc
            .iter()
            .step_by((d.roc.len() / 8).max(1))
            .map(|(f, t)| format!("({f:.2},{t:.2})"))
            .collect();
        println!("ROC (fpr,tpr): {}", roc_s.join(" "));
        let pr_s: Vec<String> =
            d.pr.iter()
                .step_by((d.pr.len() / 8).max(1))
                .map(|(r, p)| format!("({r:.2},{p:.2})"))
                .collect();
        println!("PR (recall,precision): {}", pr_s.join(" "));
        let conv_s: Vec<String> = d
            .convergence
            .iter()
            .map(|(x, a)| format!("({x:.0}k,{a:.2})"))
            .collect();
        println!("AUC vs measurements (×k): {}", conv_s.join(" "));
        println!();
    }
    println!(
        "shape (converges within per-dataset bounds, ≤ 20×k static / ≤ 30×k Harvard replay): {}",
        if fig.meets_convergence_bounds() {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    let path = report::write_json("fig5_accuracy", &fig);
    println!("written: {}", path.display());
    fig.assert_convergence_bounds();
    for d in &fig.datasets {
        assert!(
            d.final_auc > 0.85,
            "{}: final AUC {} too low",
            d.dataset,
            d.final_auc
        );
    }
}
