//! Tracked performance suite: times the training/simulation hot paths
//! and writes a schema-stable `BENCH.json` for cross-PR comparison.
//!
//! ```text
//! cargo run --release --bin perf_suite                   # Scale::standard → BENCH.json
//! cargo run --release --bin perf_suite -- --quick        # CI smoke
//! cargo run --release --bin perf_suite -- --out B.json --label baseline
//! cargo run --release --bin perf_suite -- --compare BENCH_baseline.json
//! ```

use dmf_bench::experiments::{perf, wire};
use dmf_bench::report;
use dmf_bench::{flag_value, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH.json".into());
    let label = flag_value(&args, "--label").unwrap_or_else(|| "current".into());

    let suite = perf::run(&scale, &label);

    println!("perf_suite — scale {} (label: {label})", suite.scale);
    println!(
        "{}",
        report::row(
            &[
                "metric".into(),
                "work".into(),
                "unit".into(),
                "elapsed_s".into(),
                "per_sec".into(),
            ],
            &[20, 12, 12, 10, 14],
        )
    );
    for m in &suite.metrics {
        println!(
            "{}",
            report::row(
                &[
                    m.name.clone(),
                    format!("{:.0}", m.work),
                    m.unit.clone(),
                    format!("{:.3}", m.elapsed_s),
                    format!("{:.0}", m.per_sec),
                ],
                &[20, 12, 12, 10, 14],
            )
        );
    }

    for r in &suite.scale_runs {
        println!(
            "scale n={} islands={} sim={}s: {:.0} events/s, {:.0} SGD updates/s, {:.0} B/node (dense would be {} B/node)",
            r.n, r.islands, r.sim_seconds, r.events_per_sec, r.updates_per_sec, r.bytes_per_node,
            4 * r.n
        );
    }

    for r in &suite.wire_runs {
        println!(
            "wire {} n={} sim={}s: {:.1} bytes/probe-cycle ({} cycles, {} msgs, {} keyframes, {} gaps, AUC {:.3})",
            r.version,
            r.nodes,
            r.sim_seconds,
            r.bytes_per_probe_cycle,
            r.probe_cycles,
            r.messages_sent,
            r.keyframes_sent,
            r.gaps_detected,
            r.final_auc
        );
    }
    if let Some(ratio) = wire::compression_ratio(&suite.wire_runs) {
        println!("wire v1/v2 bytes-per-cycle ratio: {ratio:.2}x");
    }

    for r in &suite.service_runs {
        println!(
            "service shards={} read={}% conns={} n={}: {:.0} qps, p50 {:.1} µs, p99 {:.1} µs \
             (upd p99 {:.1}, pred p99 {:.1}, rank p99 {:.1}; mean batch {:.2}, max depth {}; \
             {} requests, {} rejected)",
            r.shards,
            r.read_pct,
            r.connections,
            r.nodes,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.update.p99_us,
            r.predict.p99_us,
            r.rank.p99_us,
            r.batching.mean_batch,
            r.batching.max_queue_depth,
            r.requests,
            r.overload_rejections
        );
    }

    let json = serde_json::to_string_pretty(&suite).expect("serialize perf report");
    std::fs::write(&out, json).expect("write BENCH json");
    println!("written: {out}");

    if let Some(baseline_path) = flag_value(&args, "--compare") {
        let text = std::fs::read_to_string(&baseline_path).expect("read baseline BENCH json");
        let baseline: perf::PerfReport =
            serde_json::from_str(&text).expect("parse baseline BENCH json");
        assert_eq!(
            baseline.schema_version,
            perf::SCHEMA_VERSION,
            "baseline schema differs"
        );
        println!();
        println!(
            "speedup vs {baseline_path} (label: {}, scale: {})",
            baseline.label, baseline.scale
        );
        if baseline.scale != suite.scale {
            println!("  WARNING: scales differ; ratios are not comparable");
        }
        for m in &suite.metrics {
            match suite.speedup_over(&baseline, &m.name) {
                Some(s) => println!("  {:<20} {s:5.2}x", m.name),
                None => println!("  {:<20} (not in baseline)", m.name),
            }
        }
    }
}
