//! Regenerates Figure 4: AUC vs rank r, neighbor count k, threshold τ.
//!
//! Pass `r`, `k` and/or `tau` as arguments to restrict the sweep
//! (default: all three).

use dmf_bench::experiments::fig4;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let mut which: Vec<&str> = args
        .iter()
        .filter_map(|a| match a.as_str() {
            "r" | "k" | "tau" => Some(a.as_str()),
            _ => None,
        })
        .collect();
    if which.is_empty() {
        which = vec!["r", "k", "tau"];
    }
    let fig = fig4::run(&scale, 42, &which);

    for sweep in &which {
        println!("Figure 4 — AUC vs {sweep}");
        for dataset in ["Harvard", "Meridian", "HP-S3"] {
            let series = fig.series(dataset, sweep);
            let cells: Vec<String> = std::iter::once(format!("{dataset:>9}"))
                .chain(series.iter().map(|(v, a)| format!("{v}:{a:.3}")))
                .collect();
            println!("  {}", cells.join("  "));
        }
        println!();
    }

    if which.contains(&"r") {
        for dataset in ["Harvard", "Meridian", "HP-S3"] {
            assert!(
                fig.small_rank_suffices(dataset),
                "{dataset}: r=10 should already be near-optimal (Figure 4a)"
            );
        }
        println!("shape (r=10 near-optimal everywhere): YES (matches paper)");
    }
    let path = report::write_json("fig4_r_k_tau", &fig);
    println!("written: {}", path.display());
}
