//! Ablation (DESIGN.md design-choice check): how much accuracy does
//! decentralization cost versus a centralized solver on the same
//! objective, across measurement budgets?
//!
//! The centralized batch solver sees the whole observed matrix every
//! iteration; DMFSGD touches one measurement at a time at one node.
//! Expected shape: DMFSGD approaches the centralized AUC as its budget
//! grows, and the gap at the paper budget (≈30×k per node) is small.

use dmf_baselines::centralized::batch_gd_class;
use dmf_bench::experiments::training::{auc_of, default_config, train_class};
use dmf_bench::report;
use dmf_bench::Scale;
use dmf_core::Loss;
use dmf_datasets::rtt::meridian_like;
use dmf_eval::{collect_scores, roc::auc};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    budget_times_k: usize,
    auc_dmfsgd: f64,
}

#[derive(Serialize)]
struct Ablation {
    n: usize,
    auc_centralized: f64,
    rows: Vec<Row>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let n = scale.meridian_nodes.min(300);
    let k = 10;
    let dataset = meridian_like(n, 42);
    let classes = dataset.classify(dataset.median());

    let central = batch_gd_class(&classes, 10, Loss::Logistic, 0.1, 0.1, 150, 1);
    let auc_central = auc(&collect_scores(&classes, &central.predicted_scores()));
    println!("centralized batch GD ({n} nodes): AUC = {auc_central:.3}\n");

    println!("{:>12} {:>12} {:>8}", "budget(×k)", "AUC dmfsgd", "gap");
    let mut rows = Vec::new();
    for times_k in [2usize, 5, 10, 20, 30, 50] {
        let system = train_class(&classes, default_config(k, 7), n * k * times_k);
        let a = auc_of(&system, &classes);
        println!("{times_k:>12} {a:>12.3} {:>8.3}", auc_central - a);
        rows.push(Row {
            budget_times_k: times_k,
            auc_dmfsgd: a,
        });
    }

    let result = Ablation {
        n,
        auc_centralized: auc_central,
        rows,
    };
    let path = report::write_json("ablation_centralized", &result);
    println!("\nwritten: {}", path.display());

    let last = result.rows.last().expect("rows");
    assert!(
        last.auc_dmfsgd > auc_central - 0.05,
        "decentralized ({}) must close to within 0.05 of centralized ({auc_central})",
        last.auc_dmfsgd
    );
    println!("shape (decentralized approaches centralized): YES");
}
