//! Regenerates Figure 6: robustness against erroneous class labels.

use dmf_bench::experiments::fig6;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let fig = fig6::run(&scale, 42);

    println!("Figure 6 — AUC under erroneous labels");
    println!(
        "{}",
        report::row(
            &[
                "dataset".into(),
                "type".into(),
                "0%".into(),
                "5%".into(),
                "10%".into(),
                "15%".into()
            ],
            &[10, 6, 7, 7, 7, 7],
        )
    );
    for dataset in ["Harvard", "Meridian", "HP-S3"] {
        for ty in 1u8..=4 {
            let mut cells = vec![dataset.to_string(), format!("{ty}")];
            let mut present = false;
            for &level in &fig6::LEVELS {
                match fig.auc(dataset, ty, level) {
                    Some(a) => {
                        present = true;
                        cells.push(format!("{a:.3}"));
                    }
                    None => cells.push("-".into()),
                }
            }
            if present {
                println!("{}", report::row(&cells, &[10, 6, 7, 7, 7, 7]));
            }
        }
    }
    println!(
        "\nshape (near-τ errors mild, random/good→bad errors harsher): {}",
        if fig.shape_holds() {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    let path = report::write_json("fig6_robustness", &fig);
    println!("written: {}", path.display());
    assert!(fig.shape_holds(), "Figure 6 robustness shape violated");
}
