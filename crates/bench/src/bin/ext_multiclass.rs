//! Extension experiment (paper §7 future work): ordinal multiclass
//! prediction accuracy as the class count grows, on all three
//! datasets.

use dmf_bench::report;
use dmf_bench::{Scale, Trio};
use dmf_core::config::SgdParams;
use dmf_core::multiclass::{MulticlassLabels, MulticlassSystem, OrdinalClassifier};
use dmf_core::Loss;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    classes: usize,
    exact_accuracy: f64,
    within_one_accuracy: f64,
    mean_abs_class_error: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let trio = Trio::build(&scale, 42);
    let params = SgdParams {
        eta: 0.1,
        lambda: 0.1,
        loss: Loss::Logistic,
    };

    println!(
        "{:>10} {:>3} {:>10} {:>10} {:>12} {:>8}",
        "dataset", "C", "exact", "chance", "within-one", "MAE"
    );
    let mut rows = Vec::new();
    for bundle in trio.bundles() {
        for classes in [2usize, 3, 5] {
            let labels = MulticlassLabels::quantiles(&bundle.dataset, classes);
            let clf = OrdinalClassifier::equally_spaced(classes, Loss::Logistic);
            let mut system = MulticlassSystem::new(
                bundle.dataset.len(),
                10,
                bundle.k,
                clf,
                params,
                bundle.dataset.metric,
                classes as u64,
            );
            system.run(bundle.dataset.len() * bundle.k * 40, &labels);
            let (exact, within_one, mae) = system.evaluate(&labels);
            println!(
                "{:>10} {classes:>3} {:>9.1}% {:>9.1}% {:>11.1}% {mae:>8.2}",
                bundle.name,
                exact * 100.0,
                100.0 / classes as f64,
                within_one * 100.0
            );
            assert!(
                exact > 1.5 / classes as f64,
                "{} C={classes}: exact accuracy {exact} barely above chance",
                bundle.name
            );
            rows.push(Row {
                dataset: bundle.name.to_string(),
                classes,
                exact_accuracy: exact,
                within_one_accuracy: within_one,
                mean_abs_class_error: mae,
            });
        }
    }
    let path = report::write_json("ext_multiclass", &rows);
    println!("\nwritten: {}", path.display());
    println!("shape (well above chance at every C): YES");
}
