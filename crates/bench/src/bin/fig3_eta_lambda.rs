//! Regenerates Figure 3: AUC under different η and λ for hinge and
//! logistic losses.

use dmf_bench::experiments::fig3;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let fig = fig3::run(&scale, 42);

    for swept in ["eta", "lambda"] {
        println!(
            "Figure 3 — AUC vs {swept} ({} fixed at 0.1)",
            if swept == "eta" { "λ" } else { "η" }
        );
        println!(
            "{}",
            report::row(
                &[
                    "dataset".into(),
                    "loss".into(),
                    "0.001".into(),
                    "0.010".into(),
                    "0.100".into(),
                    "1.000".into(),
                ],
                &[10, 9, 7, 7, 7, 7],
            )
        );
        for dataset in ["Harvard", "Meridian", "HP-S3"] {
            for loss in ["Logistic", "Hinge"] {
                let mut cells = vec![dataset.to_string(), loss.to_string()];
                for &value in &fig3::SWEEP {
                    let auc = fig.auc(dataset, swept, value, loss).unwrap_or(f64::NAN);
                    cells.push(format!("{auc:.3}"));
                }
                println!("{}", report::row(&cells, &[10, 9, 7, 7, 7, 7]));
            }
        }
        println!();
    }
    println!(
        "shape (plateau at 0.1/0.1; logistic ≥ hinge mostly): {}",
        if fig.shape_holds() {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    let path = report::write_json("fig3_eta_lambda", &fig);
    println!("written: {}", path.display());
    assert!(fig.shape_holds(), "Figure 3 qualitative shape violated");
}
