//! Load generator for the sharded prediction service: drives mixed
//! pipelined traffic (updates, predictions, rank queries) through the
//! full wire path and reports qps and p50/p99 latency per shard
//! count — the `service_runs` record of `BENCH.json`, standalone.
//!
//! ```text
//! cargo run --release --bin load_gen                  # standard preset
//! cargo run --release --bin load_gen -- --quick       # CI smoke
//! cargo run --release --bin load_gen -- --shards 1,2,4,8
//! cargo run --release --bin load_gen -- --out service_runs.json --label baseline
//! ```

use dmf_bench::experiments::perf::scale_name;
use dmf_bench::experiments::service::{self, ServiceRun, SHARD_COUNTS};
use dmf_bench::report;
use dmf_bench::{flag_value, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let name = scale_name(&scale);
    let label = flag_value(&args, "--label").unwrap_or_else(|| "current".into());

    // `--shards 1,2,4` overrides the tracked default shard counts.
    let shard_counts: Vec<usize> = match flag_value(&args, "--shards") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("--shards takes a comma-separated list of counts")
            })
            .collect(),
        None => SHARD_COUNTS.to_vec(),
    };

    println!("load_gen — scale {name} (label: {label})");
    let widths = [7, 12, 7, 10, 12, 11, 11, 11, 10];
    println!(
        "{}",
        report::row(
            &[
                "shards".into(),
                "connections".into(),
                "nodes".into(),
                "requests".into(),
                "in_flight".into(),
                "qps".into(),
                "p50_us".into(),
                "p99_us".into(),
                "rejected".into(),
            ],
            &widths,
        )
    );
    let runs: Vec<ServiceRun> = service::run_with(name, &shard_counts);
    for r in &runs {
        println!(
            "{}",
            report::row(
                &[
                    r.shards.to_string(),
                    r.connections.to_string(),
                    r.nodes.to_string(),
                    r.requests.to_string(),
                    r.max_in_flight.to_string(),
                    format!("{:.0}", r.qps),
                    format!("{:.1}", r.p50_us),
                    format!("{:.1}", r.p99_us),
                    r.overload_rejections.to_string(),
                ],
                &widths,
            )
        );
    }

    if let Some(out) = flag_value(&args, "--out") {
        let json = serde_json::to_string_pretty(&runs).expect("serialize service runs");
        std::fs::write(&out, json).expect("write service-runs json");
        println!("written: {out}");
    }
}
