//! Load generator for the sharded prediction service: drives mixed
//! pipelined traffic (updates, predictions, rank queries) through the
//! full wire path and reports qps plus overall and per-request-kind
//! p50/p99 latency per `(mix, shard count)` — the `service_runs`
//! record of `BENCH.json`, standalone.
//!
//! ```text
//! cargo run --release --bin load_gen                  # standard preset
//! cargo run --release --bin load_gen -- --quick       # CI smoke
//! cargo run --release --bin load_gen -- --shards 1,2,4,8
//! cargo run --release --bin load_gen -- --read-pct 90 --connections 8
//! cargo run --release --bin load_gen -- --out service_runs.json --label baseline
//! ```

use dmf_bench::experiments::perf::scale_name;
use dmf_bench::experiments::service::{self, ServiceRun, MIXES};
use dmf_bench::report;
use dmf_bench::{flag_value, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let name = scale_name(&scale);
    let label = flag_value(&args, "--label").unwrap_or_else(|| "current".into());

    // `--shards 1,2,4` overrides the tracked default shard counts.
    let shard_counts: Vec<usize> = match flag_value(&args, "--shards") {
        Some(list) => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("--shards takes a comma-separated list of counts")
            })
            .collect(),
        None => service::shard_counts(name).to_vec(),
    };
    // `--read-pct 90` pins a single mix; the default sweeps both
    // tracked mixes. `--connections 8` overrides the preset's count.
    let mixes: Vec<u32> = match flag_value(&args, "--read-pct") {
        Some(pct) => vec![pct
            .trim()
            .parse()
            .expect("--read-pct takes a percentage 0..=100")],
        None => MIXES.to_vec(),
    };
    assert!(
        mixes.iter().all(|&m| m <= 100),
        "--read-pct takes a percentage 0..=100"
    );
    let connections: usize = flag_value(&args, "--connections")
        .map(|c| {
            c.trim()
                .parse()
                .expect("--connections takes a positive count")
        })
        .unwrap_or(0);

    println!("load_gen — scale {name} (label: {label})");
    let widths = [7, 9, 12, 7, 10, 11, 9, 9, 9, 9, 9, 10, 9, 9];
    println!(
        "{}",
        report::row(
            &[
                "shards".into(),
                "read_pct".into(),
                "connections".into(),
                "nodes".into(),
                "requests".into(),
                "qps".into(),
                "p50_us".into(),
                "p99_us".into(),
                "upd_p99".into(),
                "prd_p99".into(),
                "rnk_p99".into(),
                "mean_batch".into(),
                "max_depth".into(),
                "rejected".into(),
            ],
            &widths,
        )
    );
    let runs: Vec<ServiceRun> = service::run_matrix(name, &mixes, &shard_counts, connections);
    for r in &runs {
        println!(
            "{}",
            report::row(
                &[
                    r.shards.to_string(),
                    r.read_pct.to_string(),
                    r.connections.to_string(),
                    r.nodes.to_string(),
                    r.requests.to_string(),
                    format!("{:.0}", r.qps),
                    format!("{:.1}", r.p50_us),
                    format!("{:.1}", r.p99_us),
                    format!("{:.1}", r.update.p99_us),
                    format!("{:.1}", r.predict.p99_us),
                    format!("{:.1}", r.rank.p99_us),
                    format!("{:.2}", r.batching.mean_batch),
                    r.batching.max_queue_depth.to_string(),
                    r.overload_rejections.to_string(),
                ],
                &widths,
            )
        );
    }

    if let Some(out) = flag_value(&args, "--out") {
        let json = serde_json::to_string_pretty(&runs).expect("serialize service runs");
        std::fs::write(&out, json).expect("write service-runs json");
        println!("written: {out}");
    }
}
