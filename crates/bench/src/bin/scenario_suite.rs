//! Tracked quality suite: runs the non-stationary scenario registry
//! end-to-end and writes a schema-stable `QUALITY.json` — the quality
//! analog of `perf_suite`'s `BENCH.json`. Exits non-zero when any
//! scenario's final-window AUC breaks its pinned floor, which is what
//! makes the CI `quality-gate` job a real gate.
//!
//! ```text
//! cargo run --release --bin scenario_suite                  # standard → QUALITY.json
//! cargo run --release --bin scenario_suite -- --quick       # CI gate scale
//! cargo run --release --bin scenario_suite -- --out Q.json --label tracked
//! ```
//!
//! Byte-deterministic per registry seed: two runs at the same scale
//! produce identical files, so diffs in a committed `QUALITY.json`
//! are real quality changes.

use dmf_bench::experiments::scenario;
use dmf_bench::report;
use dmf_bench::{flag_value, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "QUALITY.json".into());
    let label = flag_value(&args, "--label").unwrap_or_else(|| "current".into());

    let suite = scenario::run(&scale, &label);

    println!("scenario_suite — scale {} (label: {label})", suite.scale);
    let widths = [20, 8, 9, 9, 9, 7, 6];
    println!(
        "{}",
        report::row(
            &[
                "scenario".into(),
                "windows".into(),
                "min AUC".into(),
                "final".into(),
                "floor".into(),
                "conv@".into(),
                "gate".into(),
            ],
            &widths,
        )
    );
    for s in &suite.scenarios {
        println!(
            "{}",
            report::row(
                &[
                    s.name.clone(),
                    s.windows.len().to_string(),
                    format!("{:.3}", s.min_auc),
                    format!("{:.3}", s.final_auc),
                    format!("{:.2}", s.auc_floor),
                    s.windows_to_floor
                        .map_or_else(|| "-".into(), |w| format!("w{w}")),
                    if s.pass { "pass" } else { "FAIL" }.into(),
                ],
                &widths,
            )
        );
    }

    let json = serde_json::to_string_pretty(&suite).expect("serialize quality report");
    std::fs::write(&out, json).expect("write QUALITY json");
    println!("written: {out}");

    if !suite.all_pass {
        eprintln!("quality gate BROKEN: a scenario's final-window AUC fell below its floor");
        std::process::exit(1);
    }
}
