//! Regenerates Figure 1: normalized singular-value spectra.

use dmf_bench::experiments::fig1;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let fig = fig1::run(&scale, 42);

    println!("Figure 1 — normalized singular values (top 20)");
    println!(
        "{}",
        report::row(
            &[
                "#".into(),
                "RTT".into(),
                "RTT class".into(),
                "ABW".into(),
                "ABW class".into()
            ],
            &[3, 10, 10, 10, 10],
        )
    );
    for i in 0..20 {
        let cells: Vec<String> = std::iter::once(format!("{}", i + 1))
            .chain(fig.spectra.iter().map(|s| format!("{:.4}", s.values[i])))
            .collect();
        println!("{}", report::row(&cells, &[3, 10, 10, 10, 10]));
    }
    println!(
        "\nfast decay (σ10 < 0.35·σ1 on every curve): {}",
        if fig.decays_fast() {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    let path = report::write_json("fig1_singular_values", &fig);
    println!("written: {}", path.display());
    assert!(fig.decays_fast(), "Figure 1 qualitative claim violated");
}
