//! Regenerates Table 3: δ values achieving 5/10/15 % error levels.

use dmf_bench::experiments::table3;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let table = table3::run(&scale, 42);

    println!("Table 3 — δ values for target error levels");
    let header: Vec<String> = std::iter::once("error%".to_string())
        .chain(
            table
                .columns
                .iter()
                .map(|c| format!("{} {} ({})", c.dataset, c.error_type, c.unit)),
        )
        .collect();
    println!("{}", report::row(&header, &[7, 20, 20, 18, 18]));
    for (idx, &level) in table3::LEVELS.iter().enumerate() {
        let cells: Vec<String> = std::iter::once(format!("{:.0}%", level * 100.0))
            .chain(
                table
                    .columns
                    .iter()
                    .map(|c| format!("{:.1}", c.rows[idx].1)),
            )
            .collect();
        println!("{}", report::row(&cells, &[7, 20, 20, 18, 18]));
    }
    println!(
        "\nδ monotone in error level: {}",
        if table.monotone() {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    let path = report::write_json("table3_delta_calibration", &table);
    println!("written: {}", path.display());
    assert!(table.monotone(), "Table 3 monotonicity violated");
}
