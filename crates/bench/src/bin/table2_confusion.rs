//! Regenerates Table 2: accuracy and confusion matrices.

use dmf_bench::experiments::table2;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let table = table2::run(&scale, 42);

    println!("Table 2 — confusion matrices (sign of x̂)");
    for r in &table.rows {
        println!("\n{}  (accuracy = {:.1}%)", r.dataset, r.accuracy * 100.0);
        println!(
            "{}",
            report::row(
                &["".into(), "pred Good".into(), "pred Bad".into()],
                &[12, 10, 10]
            )
        );
        println!(
            "{}",
            report::row(
                &[
                    "actual Good".into(),
                    format!("{:.1}%", r.confusion_percent[0][0]),
                    format!("{:.1}%", r.confusion_percent[0][1]),
                ],
                &[12, 10, 10],
            )
        );
        println!(
            "{}",
            report::row(
                &[
                    "actual Bad".into(),
                    format!("{:.1}%", r.confusion_percent[1][0]),
                    format!("{:.1}%", r.confusion_percent[1][1]),
                ],
                &[12, 10, 10],
            )
        );
    }
    println!(
        "\nshape (accuracy > 80%, diagonal dominant): {}",
        if table.shape_holds() {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    let path = report::write_json("table2_confusion", &table);
    println!("written: {}", path.display());
    assert!(table.shape_holds(), "Table 2 shape violated");
}
