//! Runs every table/figure experiment in sequence — plus the
//! non-stationary scenario quality suite — and records all JSON
//! outputs (the data behind EXPERIMENTS.md).

use dmf_bench::experiments::{
    fig1, fig3, fig4, fig5, fig6, fig7, scenario, table1, table2, table3,
};
use dmf_bench::report;
use dmf_bench::Scale;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let seed = 42;
    println!("running all experiments at scale {scale:?}");

    let t = Instant::now();
    macro_rules! step {
        ($name:literal, $expr:expr) => {{
            let start = Instant::now();
            let value = $expr;
            let path = report::write_json($name, &value);
            println!(
                "{:<28} {:>7.1}s  -> {}",
                $name,
                start.elapsed().as_secs_f64(),
                path.display()
            );
            value
        }};
    }

    let fig1 = step!("fig1_singular_values", fig1::run(&scale, seed));
    assert!(fig1.decays_fast(), "fig1 shape");
    let table1 = step!("table1_tau_portions", table1::run(&scale, seed));
    assert!(table1.structure_holds(), "table1 shape");
    let fig3 = step!("fig3_eta_lambda", fig3::run(&scale, seed));
    assert!(fig3.shape_holds(), "fig3 shape");
    let fig4 = step!("fig4_r_k_tau", fig4::run(&scale, seed, &["r", "k", "tau"]));
    for d in ["Harvard", "Meridian", "HP-S3"] {
        assert!(fig4.small_rank_suffices(d), "fig4 shape for {d}");
    }
    let fig5 = step!("fig5_accuracy", fig5::run(&scale, seed));
    fig5.assert_convergence_bounds();
    let table2 = step!("table2_confusion", table2::run(&scale, seed));
    assert!(table2.shape_holds(), "table2 shape");
    let fig6 = step!("fig6_robustness", fig6::run(&scale, seed));
    assert!(fig6.shape_holds(), "fig6 shape");
    let table3 = step!("table3_delta_calibration", table3::run(&scale, seed));
    assert!(table3.monotone(), "table3 shape");
    let fig7 = step!("fig7_peer_selection", fig7::run(&scale, seed));
    assert!(fig7.shape_holds(), "fig7 shape");
    // Beyond the paper: the non-stationary scenario registry, with its
    // per-scenario AUC floors enforced (the same gate CI runs).
    let quality = step!("scenario_quality", scenario::run(&scale, "run_all"));
    assert!(
        quality.all_pass,
        "scenario quality floors broken: {:?}",
        quality
            .scenarios
            .iter()
            .filter(|s| !s.pass)
            .map(|s| (&s.name, s.final_auc, s.auc_floor))
            .collect::<Vec<_>>()
    );

    println!(
        "\nall experiments done in {:.1}s — every paper-shape and quality assertion passed",
        t.elapsed().as_secs_f64()
    );
}
