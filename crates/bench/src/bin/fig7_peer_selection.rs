//! Regenerates Figure 7: peer selection — optimality (stretch) and
//! satisfaction (unsatisfied-node percentage).

use dmf_bench::experiments::fig7;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let fig = fig7::run(&scale, 42);

    let methods = [
        "Random",
        "Classification",
        "Regression",
        "Classification with noise",
    ];
    for (title, pick) in [("stretch", 0usize), ("unsatisfied-node fraction", 1usize)] {
        println!("Figure 7 — {title} vs peer-set size");
        for dataset in ["Harvard", "Meridian", "HP-S3"] {
            println!("  {dataset}:");
            for method in methods {
                let mut series: Vec<(usize, f64)> = fig
                    .cells
                    .iter()
                    .filter(|c| c.dataset == dataset && c.method == method)
                    .map(|c| (c.peers, if pick == 0 { c.stretch } else { c.unsatisfied }))
                    .collect();
                series.sort_by_key(|&(p, _)| p);
                let cells: Vec<String> =
                    series.iter().map(|(p, v)| format!("{p}:{v:.3}")).collect();
                println!("    {:<26} {}", method, cells.join("  "));
            }
        }
        println!();
    }
    println!(
        "shape (predictors beat random; noise costs little satisfaction): {}",
        if fig.shape_holds() {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    let path = report::write_json("fig7_peer_selection", &fig);
    println!("written: {}", path.display());
    assert!(fig.shape_holds(), "Figure 7 qualitative ordering violated");
}
