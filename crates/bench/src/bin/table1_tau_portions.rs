//! Regenerates Table 1: τ values for target good-path portions.

use dmf_bench::experiments::table1;
use dmf_bench::report;
use dmf_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let table = table1::run(&scale, 42);

    println!("Table 1 — impact of τ on portions of good paths");
    let header: Vec<String> = std::iter::once("Good%".to_string())
        .chain(
            table
                .columns
                .iter()
                .map(|c| format!("{} ({})", c.dataset, c.unit)),
        )
        .collect();
    println!("{}", report::row(&header, &[6, 16, 16, 16]));
    for (idx, &portion) in table1::PORTIONS.iter().enumerate() {
        let cells: Vec<String> = std::iter::once(format!("{:.0}%", portion * 100.0))
            .chain(
                table
                    .columns
                    .iter()
                    .map(|c| format!("{:.1}", c.rows[idx].1)),
            )
            .collect();
        println!("{}", report::row(&cells, &[6, 16, 16, 16]));
    }
    println!(
        "\nstructure (τ monotone, portions achieved): {}",
        if table.structure_holds() {
            "YES (matches paper)"
        } else {
            "NO"
        }
    );
    let path = report::write_json("table1_tau_portions", &table);
    println!("written: {}", path.display());
    assert!(table.structure_holds(), "Table 1 structure violated");
}
