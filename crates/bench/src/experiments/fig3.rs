//! Figure 3 — AUC under different η and λ, for hinge and logistic
//! losses, on all three datasets.
//!
//! Row 1: η ∈ {0.001, 0.01, 0.1, 1.0} with λ = 0.1.
//! Row 2: λ ∈ {0.001, 0.01, 0.1, 1.0} with η = 0.1.
//! Expected shape: a broad plateau around η = λ = 0.1; logistic ≥
//! hinge in most cells; tiny η under-trains within the fixed budget.

use crate::experiments::scale::Scale;
use crate::experiments::training::{auc_of, default_config, BundleTrainer};
use crate::experiments::trio::Trio;
use crate::parallel::parallel_map;
use dmf_core::Loss;
use serde::{Deserialize, Serialize};

/// Sweep values used by the paper.
pub const SWEEP: [f64; 4] = [0.001, 0.01, 0.1, 1.0];

/// One AUC measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3Cell {
    /// Dataset name.
    pub dataset: String,
    /// Which parameter was swept ("eta" or "lambda").
    pub swept: String,
    /// The swept parameter's value.
    pub value: f64,
    /// Loss function.
    pub loss: String,
    /// Resulting AUC.
    pub auc: f64,
}

/// The full figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig3 {
    /// All cells (3 datasets × 2 sweeps × 4 values × 2 losses).
    pub cells: Vec<Fig3Cell>,
}

/// Runs the experiment. The grid's cells are independent (each trains
/// its own system from its own seed), so they fan out across cores via
/// [`parallel_map`]; the cell order — and every byte of the result —
/// matches the serial loop exactly.
pub fn run(scale: &Scale, seed: u64) -> Fig3 {
    let trio = Trio::build(scale, seed);
    let trainer = BundleTrainer { trio: &trio, scale };
    // Per-bundle invariants computed once, shared read-only by cells.
    let classes: Vec<_> = trio
        .bundles()
        .iter()
        .map(|b| b.dataset.classify(b.dataset.median()))
        .collect();
    // Descriptors in the historical serial order.
    let mut grid = Vec::new();
    for b in 0..trio.bundles().len() {
        for loss in [Loss::Logistic, Loss::Hinge] {
            for &eta in &SWEEP {
                grid.push((b, loss, "eta", eta));
            }
            for &lambda in &SWEEP {
                grid.push((b, loss, "lambda", lambda));
            }
        }
    }
    let cells = parallel_map(grid, |(b, loss, swept, value)| {
        let bundle = trio.bundles()[b];
        let class = &classes[b];
        // λη < 1 is required; the (η=1, λ=0.1) corner is valid.
        let mut cfg = if swept == "eta" {
            let mut cfg = default_config(bundle.k, seed ^ 0xe7a);
            cfg.sgd.eta = value;
            cfg.sgd.lambda = 0.1;
            cfg
        } else {
            let mut cfg = default_config(bundle.k, seed ^ 0x1a3bda);
            cfg.sgd.eta = 0.1;
            cfg.sgd.lambda = value;
            cfg
        };
        cfg.sgd.loss = loss;
        let system = trainer.train(bundle, class, cfg, &[], 0);
        Fig3Cell {
            dataset: bundle.name.into(),
            swept: swept.into(),
            value,
            loss: format!("{loss:?}"),
            auc: auc_of(&system, class),
        }
    });
    Fig3 { cells }
}

impl Fig3 {
    /// AUC of a specific cell.
    pub fn auc(&self, dataset: &str, swept: &str, value: f64, loss: &str) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| {
                c.dataset == dataset && c.swept == swept && c.value == value && c.loss == loss
            })
            .map(|c| c.auc)
    }

    /// The paper's headline claims for this figure.
    pub fn shape_holds(&self) -> bool {
        // (a) the default η=0.1 cell is accurate on every dataset;
        let default_good = ["Harvard", "Meridian", "HP-S3"].iter().all(|d| {
            self.auc(d, "eta", 0.1, "Logistic")
                .map(|a| a > 0.8)
                .unwrap_or(false)
        });
        // (b) η=0.1 beats the under-trained η=0.001 everywhere (logistic).
        let eta_matters = ["Harvard", "Meridian", "HP-S3"].iter().all(|d| {
            match (
                self.auc(d, "eta", 0.1, "Logistic"),
                self.auc(d, "eta", 0.001, "Logistic"),
            ) {
                (Some(hi), Some(lo)) => hi > lo,
                _ => false,
            }
        });
        // (c) logistic ≥ hinge in the majority of cells.
        let mut logistic_wins = 0usize;
        let mut comparisons = 0usize;
        for c in self.cells.iter().filter(|c| c.loss == "Logistic") {
            if let Some(h) = self.auc(&c.dataset, &c.swept, c.value, "Hinge") {
                comparisons += 1;
                if c.auc >= h - 0.01 {
                    logistic_wins += 1;
                }
            }
        }
        default_good && eta_matters && comparisons > 0 && logistic_wins * 2 > comparisons
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_quick_scale_shape() {
        let fig = run(&Scale::quick(), 3);
        assert_eq!(fig.cells.len(), 3 * 2 * 2 * 4);
        assert!(fig.shape_holds(), "figure 3 qualitative shape violated");
    }
}
