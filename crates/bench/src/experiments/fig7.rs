//! Figure 7 — peer selection: optimality (stretch) vs satisfaction
//! (unsatisfied-node percentage).
//!
//! Each node gets a peer set (size 10–60) disjoint from its training
//! neighbors and picks one peer by: Random / Classification (largest
//! `x̂`) / Regression (best predicted quantity) / Classification
//! trained on 15 % noisy labels (10 % flip-near-τ + 5 % good→bad).
//!
//! Expected shape: both predictors beat Random on both criteria;
//! Regression wins on stretch (it optimizes magnitude); Classification
//! achieves comparable satisfaction (≈10 % unsatisfied) and noise
//! costs it only a few points.

use crate::experiments::scale::Scale;
use crate::experiments::training::{
    default_config, predicted_quantities, train_quantity, train_quantity_trace, BundleTrainer,
};
use crate::experiments::trio::Trio;
use dmf_eval::peersel::{evaluate_peer_selection, SelectionStrategy};
use dmf_simnet::errors::{
    calibrate_delta, calibrate_good_to_bad_fraction, inject, BandErrorKind, ErrorModel,
};
use dmf_simnet::NeighborSets;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Peer-set sizes swept (paper: 10..60).
pub const PEER_COUNTS: [usize; 6] = [10, 20, 30, 40, 50, 60];

/// One (dataset, method, peer-count) outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7Cell {
    /// Dataset name.
    pub dataset: String,
    /// Method: "Random", "Classification", "Regression",
    /// "Classification with noise".
    pub method: String,
    /// Peer-set size.
    pub peers: usize,
    /// Average stretch.
    pub stretch: f64,
    /// Unsatisfied-node fraction.
    pub unsatisfied: f64,
}

/// The full figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig7 {
    /// All cells.
    pub cells: Vec<Fig7Cell>,
}

/// Runs the experiment.
pub fn run(scale: &Scale, seed: u64) -> Fig7 {
    let trio = Trio::build(scale, seed);
    let trainer = BundleTrainer { trio: &trio, scale };
    let mut cells = Vec::new();

    for bundle in trio.bundles() {
        let n = bundle.dataset.len();
        let tau = bundle.dataset.median();
        let clean = bundle.dataset.classify(tau);
        let ticks = scale.ticks(n, bundle.k);

        // Classification on clean labels.
        let class_system = trainer.train(
            bundle,
            &clean,
            default_config(bundle.k, seed ^ 0x0f17),
            &[],
            0,
        );
        let class_scores = class_system.predicted_scores();

        // Classification on noisy labels: 10% flip-near-τ + 5% good→bad.
        let delta = calibrate_delta(&bundle.dataset, tau, 0.10, BandErrorKind::FlipNearTau);
        let error_models = [
            ErrorModel::FlipNearTau { delta },
            ErrorModel::GoodToBad {
                fraction_of_good: calibrate_good_to_bad_fraction(&clean, 0.05),
            },
        ];
        let noisy_system = if bundle.name == "Harvard" {
            // Errors happen at measurement time during trace replay.
            trainer.train(
                bundle,
                &clean,
                default_config(bundle.k, seed ^ 0x0f18),
                &error_models,
                seed ^ 0xbad,
            )
        } else {
            let mut noisy = clean.clone();
            let mut err_rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbad);
            for model in error_models {
                inject(&mut noisy, &bundle.dataset, model, &mut err_rng);
            }
            trainer.train(
                bundle,
                &noisy,
                default_config(bundle.k, seed ^ 0x0f18),
                &[],
                0,
            )
        };
        let noisy_scores = noisy_system.predicted_scores();

        // Regression (quantity-based, L2): trace replay for Harvard,
        // random order otherwise.
        let quantity_system = if bundle.name == "Harvard" {
            train_quantity_trace(&trio.harvard_trace, tau, bundle.k, seed ^ 0x0f19)
        } else {
            train_quantity(&bundle.dataset, bundle.k, seed ^ 0x0f19, ticks)
        };
        let quantities = predicted_quantities(&quantity_system);

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9ee5);
        let neighbors = NeighborSets::random(n, bundle.k, &mut rng);
        for &m in &PEER_COUNTS {
            if m + bundle.k + 1 > n {
                continue; // quick-scale instances can't fit this peer count
            }
            let peer_sets = neighbors.disjoint_peer_sets(m, &mut rng);
            let methods: [(&str, SelectionStrategy); 4] = [
                ("Random", SelectionStrategy::Random),
                (
                    "Classification",
                    SelectionStrategy::HighestScore(&class_scores),
                ),
                (
                    "Regression",
                    SelectionStrategy::BestPredictedQuantity(&quantities, bundle.dataset.metric),
                ),
                (
                    "Classification with noise",
                    SelectionStrategy::HighestScore(&noisy_scores),
                ),
            ];
            for (method, strategy) in methods {
                let out =
                    evaluate_peer_selection(&bundle.dataset, tau, &peer_sets, strategy, &mut rng);
                cells.push(Fig7Cell {
                    dataset: bundle.name.into(),
                    method: method.into(),
                    peers: m,
                    stretch: out.avg_stretch,
                    unsatisfied: out.unsatisfied_fraction,
                });
            }
        }
    }
    Fig7 { cells }
}

impl Fig7 {
    /// Mean of a column over peer counts.
    fn mean_over_peers(&self, dataset: &str, method: &str, f: impl Fn(&Fig7Cell) -> f64) -> f64 {
        let vals: Vec<f64> = self
            .cells
            .iter()
            .filter(|c| c.dataset == dataset && c.method == method)
            .map(f)
            .collect();
        dmf_linalg::stats::mean(&vals)
    }

    /// The paper's qualitative ordering.
    pub fn shape_holds(&self) -> bool {
        ["Harvard", "Meridian", "HP-S3"].iter().all(|d| {
            let stretch_gap = |m: &str, better_than: &str| {
                let a = self.mean_over_peers(d, m, |c| c.stretch);
                let b = self.mean_over_peers(d, better_than, |c| c.stretch);
                // "Closer to 1 is better": compare distances from 1.
                (a - 1.0).abs() <= (b - 1.0).abs() + 0.02
            };
            let sat = |m: &str| self.mean_over_peers(d, m, |c| c.unsatisfied);
            // Both predictors beat random on both criteria.
            stretch_gap("Classification", "Random")
                && stretch_gap("Regression", "Random")
                && sat("Classification") < sat("Random")
                && sat("Regression") < sat("Random")
                // Classification stays satisfactory even with noise.
                && sat("Classification with noise") < sat("Random")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_quick_scale() {
        let fig = run(&Scale::quick(), 61);
        assert!(!fig.cells.is_empty());
        assert!(fig.shape_holds(), "figure 7 ordering violated");
        // Stretch orientation: ≥1 for RTT datasets, ≤1 for ABW.
        for c in &fig.cells {
            if c.dataset == "HP-S3" {
                assert!(c.stretch <= 1.0 + 1e-9, "{c:?}");
            } else {
                assert!(c.stretch >= 1.0 - 1e-9, "{c:?}");
            }
        }
    }
}
