//! Experiment implementations, one module per paper artifact.

pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod perf;
pub mod scale;
pub mod scale_sim;
pub mod scenario;
pub mod service;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod training;
pub mod trio;
pub mod wire;
