//! Tracked prediction-quality suite over non-stationary scenarios
//! (`scenario_suite` binary).
//!
//! The perf suite ([`crate::experiments::perf`]) tracks how *fast* the
//! hot paths run; this module tracks whether prediction quality
//! *holds* when the network refuses to stand still. A [`registry`] of
//! named [`ScenarioSpec`]s — stationary baseline, drift, flash
//! congestion, routing changes, partition + loss, churn under drift —
//! is executed end-to-end on the simulated network: the harness cuts
//! the timeline at every condition transition and window boundary,
//! re-embeds the delay table, injects impairments, drives membership
//! through `Session::join`/`leave`, and scores the session per window
//! with [`dmf_eval::window`]. The result is a schema-stable
//! [`QualityReport`] (`QUALITY.json`) with per-scenario, per-window
//! AUC/accuracy and a pinned AUC floor per scenario — the quality
//! analog of the tracked `BENCH.json`.
//!
//! Quality floors are CI-safe where wall-clock thresholds are not:
//! every run is byte-deterministic given the spec seeds, so a broken
//! floor is a real regression, never scheduler noise.

use crate::experiments::scale::Scale;
use crate::experiments::training::default_config;
use dmf_core::runner::SimnetDriver;
use dmf_core::{Session, SessionBuilder};
use dmf_datasets::rtt::RttDatasetConfig;
use dmf_datasets::scenario::{MembershipEventKind, Scenario};
use dmf_datasets::{ClassMatrix, Condition, ScenarioSpec};
use dmf_eval::window::window_stats;
use dmf_eval::ScoredLabel;
use dmf_linalg::Matrix;
use dmf_proto::WireVersion;
use dmf_simnet::NetConfig;
use serde::{Deserialize, Serialize};

/// Bump when the `QUALITY.json` layout changes incompatibly (the CI
/// gate and comparison scripts key on this).
pub const QUALITY_SCHEMA_VERSION: u32 = 1;

/// Neighbor count every scenario population runs with.
const SCENARIO_K: usize = 10;

/// Probe timer period (seconds) for every scenario.
const PROBE_INTERVAL_S: f64 = 0.5;

/// Timeline cut tolerance: transitions closer than this collapse.
const CUT_EPS: f64 = 1e-9;

/// Quality of one evaluation window of one scenario.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WindowQuality {
    /// Window index (0-based).
    pub index: usize,
    /// Window start in simulated seconds.
    pub t_start_s: f64,
    /// Window end in simulated seconds.
    pub t_end_s: f64,
    /// AUC over alive pairs against the ground truth the network ran
    /// on at the window's close (the truth of the window's last
    /// segment — ground truth is piecewise-constant at segment
    /// granularity, so this is `ground_truth_at(<last segment
    /// start>)`, the same matrix the probes measured).
    pub auc: f64,
    /// Sign accuracy over the same pairs.
    pub accuracy: f64,
    /// Measurements completed during the window.
    pub measurements: usize,
    /// Alive nodes at the window's close.
    pub alive: usize,
}

/// One scenario's full quality record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioQuality {
    /// Registry name.
    pub name: String,
    /// Seed the scenario realized from.
    pub seed: u64,
    /// Population size.
    pub nodes: usize,
    /// The pinned floor the final window's AUC must clear.
    pub auc_floor: f64,
    /// AUC of the last window (the gated number).
    pub final_auc: f64,
    /// Worst window AUC (how deep the scenario bit).
    pub min_auc: f64,
    /// First window whose AUC cleared the floor (`null` when none
    /// did) — the convergence measure.
    pub windows_to_floor: Option<usize>,
    /// `final_auc >= auc_floor`.
    pub pass: bool,
    /// Per-window series.
    pub windows: Vec<WindowQuality>,
}

/// The full suite result, as persisted to `QUALITY.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct QualityReport {
    /// JSON layout version ([`QUALITY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Scale preset name ("quick" / "standard" / "paper").
    pub scale: String,
    /// Free-form label (`--label`; e.g. "tracked", a commit id).
    pub label: String,
    /// All scenarios, in registry order.
    pub scenarios: Vec<ScenarioQuality>,
    /// True when every scenario cleared its floor.
    pub all_pass: bool,
}

impl QualityReport {
    /// Looks up a scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioQuality> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// One registry entry: a spec plus its pinned AUC floor.
#[derive(Clone, Debug)]
pub struct ScenarioCase {
    /// The declarative scenario.
    pub spec: ScenarioSpec,
    /// Floor the final window's AUC must clear in CI.
    pub auc_floor: f64,
    /// When set, the scenario runs in driver wire mode: every
    /// protocol leg travels as encoded `dmf-proto` datagrams of this
    /// version (the loss-hardening scenarios gate the v2 delta
    /// protocol this way). `None` uses the native enum transport.
    pub wire: Option<WireVersion>,
}

/// The tracked scenario registry. Every entry runs 600 simulated
/// seconds in 30-second evaluation windows over a Meridian-like
/// substrate whose population follows the scale preset; condition
/// timings are aligned so each scenario converges, gets hit, and has
/// room to recover before the gated final window.
///
/// To add a scenario: append a case here (compose any [`Condition`]s),
/// pick a floor from a few local runs, and extend the expected-name
/// list in the CI gate — nothing else is needed; the suite, the JSON
/// schema and `run_all` pick it up automatically.
pub fn registry(scale: &Scale) -> Vec<ScenarioCase> {
    let nodes = scale.harvard_nodes;
    let substrate = || RttDatasetConfig::meridian(nodes);
    let spec =
        |name: &str, seed: u64| ScenarioSpec::stationary(name, substrate(), seed, 600.0, 30.0);
    vec![
        ScenarioCase {
            // Control: the paper's stationary regime, windowed.
            spec: spec("baseline-stationary", 101),
            auc_floor: 0.85,
            wire: None,
        },
        ScenarioCase {
            // Continuous re-embedding: 40% of nodes migrate across the
            // delay plane over five minutes.
            spec: spec("drift", 102).with(Condition::Drift {
                start_s: 150.0,
                end_s: 450.0,
                node_fraction: 0.4,
                max_shift_ms: 35.0,
            }),
            auc_floor: 0.82,
            wire: None,
        },
        ScenarioCase {
            // A two-minute congestion storm quadruples RTTs between
            // five cluster pairs, then fully recovers.
            spec: spec("flash-congestion", 103).with(Condition::FlashCongestion {
                start_s: 240.0,
                end_s: 360.0,
                cluster_pairs: 5,
                factor: 4.0,
            }),
            auc_floor: 0.82,
            wire: None,
        },
        ScenarioCase {
            // A routing step permanently detours 20% of pairs at the
            // half-way mark; the back half must re-learn them.
            spec: spec("routing-change", 104).with(Condition::RoutingShift {
                at_s: 300.0,
                pair_fraction: 0.2,
                factor: 2.2,
            }),
            auc_floor: 0.80,
            wire: None,
        },
        ScenarioCase {
            // The hard one: a third of the population is partitioned
            // off behind a lossy control plane while the topology
            // re-embeds underneath — the isolated island keeps serving
            // stale coordinates and can only catch up after the heal.
            spec: spec("partition-loss", 105)
                .with(Condition::Partition {
                    start_s: 180.0,
                    end_s: 450.0,
                    node_fraction: 0.35,
                })
                .with(Condition::ProbeLoss {
                    start_s: 180.0,
                    end_s: 450.0,
                    probability: 0.5,
                })
                .with(Condition::Drift {
                    start_s: 180.0,
                    end_s: 420.0,
                    node_fraction: 0.5,
                    max_shift_ms: 50.0,
                }),
            auc_floor: 0.80,
            wire: None,
        },
        ScenarioCase {
            // Membership churn while the topology drifts and 10% of
            // hosts straggle: rejoined nodes bootstrap cold
            // coordinates against a moving target.
            spec: spec("churn-under-drift", 106)
                .with(Condition::Churn {
                    leave_at_s: 180.0,
                    rejoin_at_s: 330.0,
                    node_fraction: 0.12,
                })
                .with(Condition::Drift {
                    start_s: 150.0,
                    end_s: 450.0,
                    node_fraction: 0.3,
                    max_shift_ms: 30.0,
                })
                .with(Condition::Straggler {
                    node_fraction: 0.1,
                    delay_factor: 3.0,
                }),
            auc_floor: 0.75,
            wire: None,
        },
        ScenarioCase {
            // Protocol-level robustness gate: a four-minute 50%
            // probe-loss epoch with every message traveling as real
            // v2 delta-protocol bytes. Class prediction must hold at
            // parity with the native-transport scenarios — loss
            // degrades to gaps, keyframes and extra bytes, never to
            // wrong coordinates.
            spec: spec("loss-wire-v2", 107).with(Condition::ProbeLoss {
                start_s: 180.0,
                end_s: 420.0,
                probability: 0.5,
            }),
            auc_floor: 0.80,
            wire: Some(WireVersion::V2),
        },
    ]
}

/// Scored labels over pairs whose both endpoints are alive (departed
/// slots hold stale coordinates that no caller would query).
fn alive_scores(session: &Session, classes: &ClassMatrix, scores: &Matrix) -> Vec<ScoredLabel> {
    classes
        .mask
        .iter_known()
        .filter(|&(i, j)| session.is_alive(i) && session.is_alive(j))
        .map(|(i, j)| ScoredLabel {
            positive: classes.labels[(i, j)] > 0.0,
            score: scores[(i, j)],
        })
        .collect()
}

/// Runs one scenario end-to-end and scores it per window.
pub fn run_case(case: &ScenarioCase) -> ScenarioQuality {
    let scenario = Scenario::realize(case.spec.clone());
    let n = scenario.nodes();
    let gt0 = scenario.ground_truth_at(0.0);
    // τ is pinned to the *stationary* median: conditions later move
    // the truth across this fixed operating point, which is exactly
    // what makes them hard.
    let tau = gt0.median();
    let mut session = SessionBuilder::from_config(default_config(SCENARIO_K, case.spec.seed))
        .nodes(n)
        .tau(tau)
        .build()
        .expect("scenario population is valid");
    let mut driver = SimnetDriver::new(
        &session,
        gt0.clone(),
        NetConfig {
            seed: case.spec.seed,
            ..NetConfig::default()
        },
    )
    .expect("scenario substrate matches the session")
    .with_probe_interval(PROBE_INTERVAL_S)
    .expect("positive probe interval");
    if let Some(version) = case.wire {
        driver = driver.with_wire_version(version);
    }

    // Stragglers are a static property of the run.
    for (node, factor) in scenario.impairments_at(0.0).stragglers {
        driver
            .set_delay_factor(node, factor)
            .expect("realized straggler ids are in range");
    }

    // Cut the timeline at every window end and condition transition,
    // so piecewise-constant approximations (delay tables, loss levels)
    // never straddle a change.
    let mut cuts: Vec<f64> = (0..scenario.window_count())
        .map(|w| scenario.window_bounds(w).1)
        .collect();
    cuts.extend(scenario.transition_times());
    cuts.sort_by(|a, b| a.partial_cmp(b).expect("finite cut times"));
    cuts.dedup_by(|a, b| (*a - *b).abs() < CUT_EPS);

    let mut events = scenario.membership_events().into_iter().peekable();
    let mut current_gt = gt0;
    let mut windows: Vec<WindowQuality> = Vec::with_capacity(scenario.window_count());
    let mut scores = Matrix::zeros(0, 0);
    let mut window_start_meas = 0usize;
    let mut window_index = 0usize;
    let mut t0 = 0.0;
    let mut last_refresh_t = 0.0;
    for &t1 in &cuts {
        // Segment [t0, t1): membership, impairments and ground truth
        // as of t0 hold for the whole segment (the cuts guarantee it).
        while let Some(e) = events.peek() {
            if e.at_s > t0 + CUT_EPS {
                break;
            }
            match &e.kind {
                MembershipEventKind::Leave(ids) => {
                    for &id in ids {
                        session.leave(id).expect("churn leaves a viable population");
                    }
                }
                MembershipEventKind::Rejoin(count) => {
                    for _ in 0..*count {
                        session.join().expect("rejoin into freed slots");
                    }
                }
            }
            events.next();
        }
        let imp = scenario.impairments_at(t0);
        driver
            .set_loss_probability(imp.loss_probability)
            .expect("realized probability is in range");
        driver
            .set_partition_classes(&imp.partition_classes(n))
            .expect("realized island ids are in range");
        // The driver was constructed on the t = 0 truth; re-embed only
        // across segments where some condition actually moved it.
        if t0 > 0.0 && scenario.truth_changes_between(last_refresh_t, t0) {
            current_gt = scenario.ground_truth_at(t0);
            driver
                .update_rtt_ground_truth(current_gt.clone())
                .expect("scenario truth matches the population");
            last_refresh_t = t0;
        }

        driver
            .run_until(&mut session, t1)
            .expect("population size never changes mid-run");

        let (w_start, w_end) = scenario.window_bounds(window_index);
        if (t1 - w_end).abs() < CUT_EPS {
            let classes = current_gt.classify(tau);
            session.predicted_scores_into(&mut scores);
            let samples = alive_scores(&session, &classes, &scores);
            let stats = window_stats(&samples).unwrap_or_else(|| {
                panic!(
                    "scenario '{}' window [{w_start}, {w_end}) is single-class at \
                     τ = {tau:.3}: every alive pair classifies the same, so AUC is \
                     undefined — weaken the condition factors or re-center τ so both \
                     classes survive every window",
                    case.spec.name
                )
            });
            let completed = driver.stats().measurements_completed;
            windows.push(WindowQuality {
                index: window_index,
                t_start_s: w_start,
                t_end_s: w_end,
                auc: stats.auc,
                accuracy: stats.accuracy,
                measurements: completed - window_start_meas,
                alive: session.num_alive(),
            });
            window_start_meas = completed;
            window_index += 1;
        }
        t0 = t1;
    }
    debug_assert_eq!(windows.len(), scenario.window_count());

    let final_auc = windows.last().expect("at least one window").auc;
    let min_auc = windows.iter().map(|w| w.auc).fold(f64::INFINITY, f64::min);
    let windows_to_floor = windows
        .iter()
        .find(|w| w.auc >= case.auc_floor)
        .map(|w| w.index);
    ScenarioQuality {
        name: case.spec.name.clone(),
        seed: case.spec.seed,
        nodes: n,
        auc_floor: case.auc_floor,
        final_auc,
        min_auc,
        windows_to_floor,
        pass: final_auc >= case.auc_floor,
        windows,
    }
}

/// Runs the whole registry at `scale`.
pub fn run(scale: &Scale, label: &str) -> QualityReport {
    let scenarios: Vec<ScenarioQuality> = registry(scale).iter().map(run_case).collect();
    let all_pass = scenarios.iter().all(|s| s.pass);
    QualityReport {
        schema_version: QUALITY_SCHEMA_VERSION,
        scale: crate::experiments::perf::scale_name(scale).to_string(),
        label: label.to_string(),
        scenarios,
        all_pass,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_the_tracked_seven() {
        let names: Vec<String> = registry(&Scale::quick())
            .into_iter()
            .map(|c| c.spec.name)
            .collect();
        assert_eq!(
            names,
            [
                "baseline-stationary",
                "drift",
                "flash-congestion",
                "routing-change",
                "partition-loss",
                "churn-under-drift",
                "loss-wire-v2",
            ]
        );
    }

    #[test]
    fn loss_wire_v2_scenario_clears_its_floor() {
        let cases = registry(&Scale::quick());
        let case = cases
            .iter()
            .find(|c| c.spec.name == "loss-wire-v2")
            .expect("registry has the wire scenario");
        assert_eq!(case.wire, Some(WireVersion::V2));
        let q = run_case(case);
        assert_eq!(q.windows.len(), 20);
        assert!(
            q.pass,
            "v2 wire protocol under 50% probe loss must hold the floor: \
             final AUC {} < {}",
            q.final_auc, q.auc_floor
        );
        // The loss epoch [180, 420) must actually bite throughput.
        let in_epoch: usize = q
            .windows
            .iter()
            .filter(|w| w.t_start_s >= 180.0 && w.t_end_s <= 420.0)
            .map(|w| w.measurements)
            .sum::<usize>();
        let clear: usize = q
            .windows
            .iter()
            .filter(|w| w.t_end_s <= 180.0)
            .map(|w| w.measurements)
            .sum::<usize>();
        assert!(
            in_epoch < clear * 2,
            "50% loss over twice the clear span must not double throughput"
        );
    }

    #[test]
    fn baseline_scenario_converges_and_reports_all_windows() {
        let case = &registry(&Scale::quick())[0];
        let q = run_case(case);
        assert_eq!(q.windows.len(), 20);
        assert_eq!(q.nodes, Scale::quick().harvard_nodes);
        assert!(q.pass, "stationary baseline must clear its floor");
        assert!(q.final_auc > q.windows[0].auc, "training must help");
        assert_eq!(
            q.windows_to_floor.map(|w| w < 8),
            Some(true),
            "baseline converges within the first 8 windows"
        );
        for (i, w) in q.windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert!(w.t_end_s > w.t_start_s);
            assert!((0.0..=1.0).contains(&w.auc));
            assert!((0.0..=1.0).contains(&w.accuracy));
            assert!(w.measurements > 0, "window {i} completed no measurements");
            assert_eq!(w.alive, q.nodes);
        }
    }

    #[test]
    fn churn_scenario_tracks_membership_in_windows() {
        let cases = registry(&Scale::quick());
        let case = cases.iter().find(|c| c.spec.name == "churn-under-drift");
        let q = run_case(case.expect("registry has the churn scenario"));
        let n = q.nodes;
        let during: Vec<usize> = q
            .windows
            .iter()
            .filter(|w| w.t_start_s >= 180.0 && w.t_end_s <= 330.0)
            .map(|w| w.alive)
            .collect();
        assert!(!during.is_empty());
        assert!(
            during.iter().all(|&alive| alive < n),
            "alive count must drop during the churn epoch: {during:?}"
        );
        assert!(
            q.windows.last().map(|w| w.alive) == Some(n),
            "population recovers after rejoin"
        );
    }
}
