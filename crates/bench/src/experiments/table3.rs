//! Table 3 — the δ values that produce 5/10/15 % erroneous labels.
//!
//! Type 1 (flip near τ) for all three datasets; Type 2
//! (underestimation bias) additionally for HP-S3 — exactly the four
//! columns of the paper's table. δ grows with the target level.

use crate::experiments::scale::Scale;
use crate::experiments::trio::Trio;
use dmf_simnet::errors::{calibrate_delta, BandErrorKind};
use serde::{Deserialize, Serialize};

/// Error levels of the table rows.
pub const LEVELS: [f64; 3] = [0.05, 0.10, 0.15];

/// One column: a dataset/error-type pair.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3Column {
    /// Dataset name.
    pub dataset: String,
    /// "Type 1" or "Type 2".
    pub error_type: String,
    /// Unit of δ (ms / Mbps).
    pub unit: String,
    /// `(level, delta)` rows.
    pub rows: Vec<(f64, f64)>,
}

/// The full table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table3 {
    /// Harvard-T1, Meridian-T1, HP-S3-T1, HP-S3-T2.
    pub columns: Vec<Table3Column>,
}

/// Runs the calibration.
pub fn run(scale: &Scale, seed: u64) -> Table3 {
    let trio = Trio::build(scale, seed);
    let mut columns = Vec::new();
    for bundle in trio.bundles() {
        let tau = bundle.dataset.median();
        let rows = LEVELS
            .iter()
            .map(|&level| {
                (
                    level,
                    calibrate_delta(&bundle.dataset, tau, level, BandErrorKind::FlipNearTau),
                )
            })
            .collect();
        columns.push(Table3Column {
            dataset: bundle.name.to_string(),
            error_type: "Type 1".into(),
            unit: bundle.dataset.metric.unit().into(),
            rows,
        });
    }
    // HP-S3 Type 2.
    {
        let bundle = &trio.hps3;
        let tau = bundle.dataset.median();
        let rows = LEVELS
            .iter()
            .map(|&level| {
                (
                    level,
                    calibrate_delta(
                        &bundle.dataset,
                        tau,
                        level,
                        BandErrorKind::UnderestimationBias,
                    ),
                )
            })
            .collect();
        columns.push(Table3Column {
            dataset: bundle.name.to_string(),
            error_type: "Type 2".into(),
            unit: bundle.dataset.metric.unit().into(),
            rows,
        });
    }
    Table3 { columns }
}

impl Table3 {
    /// δ must grow strictly with the error level in every column.
    pub fn monotone(&self) -> bool {
        self.columns
            .iter()
            .all(|c| c.rows.windows(2).all(|w| w[0].1 < w[1].1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_quick_scale() {
        let t = run(&Scale::quick(), 51);
        assert_eq!(t.columns.len(), 4);
        assert!(t.monotone(), "δ must grow with the error level");
        for c in &t.columns {
            for &(_, delta) in &c.rows {
                assert!(
                    delta > 0.0,
                    "{} {}: δ must be positive",
                    c.dataset,
                    c.error_type
                );
            }
        }
    }
}
