//! Figure 6 — robustness against erroneous class labels.
//!
//! Error levels {0, 5, 10, 15} % of all labels, injected before
//! training: Types 1 & 4 for Harvard and Meridian; Types 1–4 for
//! HP-S3. Expected shape: band errors near τ (Types 1–2) barely dent
//! the AUC; random flips and good→bad flips (Types 3–4) hurt much
//! more.

use crate::experiments::scale::Scale;
use crate::experiments::training::{auc_of, default_config, train_class, train_trace_class};
use crate::experiments::trio::Trio;
use dmf_simnet::errors::{
    calibrate_delta, calibrate_good_to_bad_fraction, inject, BandErrorKind, ErrorModel,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Error levels swept (fractions of all labels).
pub const LEVELS: [f64; 4] = [0.0, 0.05, 0.10, 0.15];

/// One AUC measurement under injected errors.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6Cell {
    /// Dataset name.
    pub dataset: String,
    /// Error type (1–4).
    pub error_type: u8,
    /// Target fraction of erroneous labels.
    pub level: f64,
    /// Fraction actually injected.
    pub achieved_level: f64,
    /// AUC against the *clean* labels.
    pub auc: f64,
}

/// The full figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig6 {
    /// All cells.
    pub cells: Vec<Fig6Cell>,
}

/// Runs the experiment. Every (dataset, error type, level) cell trains
/// independently, so the grid fans out across cores via
/// [`crate::parallel::parallel_map`] with order-stable results.
pub fn run(scale: &Scale, seed: u64) -> Fig6 {
    let trio = Trio::build(scale, seed);
    // Per-bundle invariants computed once, shared read-only by cells.
    let prep: Vec<(f64, dmf_datasets::ClassMatrix, usize)> = trio
        .bundles()
        .iter()
        .map(|b| {
            let tau = b.dataset.median();
            let clean = b.dataset.classify(tau);
            (tau, clean, scale.ticks(b.dataset.len(), b.k))
        })
        .collect();
    let mut grid = Vec::new();
    for (b, bundle) in trio.bundles().into_iter().enumerate() {
        let types: &[u8] = if bundle.name == "HP-S3" {
            &[1, 2, 3, 4]
        } else {
            &[1, 4]
        };
        for &ty in types {
            for &level in &LEVELS {
                grid.push((b, ty, level));
            }
        }
    }
    let cells = crate::parallel::parallel_map(grid, |(b, ty, level)| {
        let bundle = trio.bundles()[b];
        let (tau, clean, ticks) = &prep[b];
        run_cell(&trio, bundle, clean, *tau, *ticks, ty, level, seed)
    });
    Fig6 { cells }
}

#[allow(clippy::too_many_arguments)]
fn run_cell(
    trio: &Trio,
    bundle: &crate::experiments::trio::DatasetBundle,
    clean: &dmf_datasets::ClassMatrix,
    tau: f64,
    ticks: usize,
    ty: u8,
    level: f64,
    seed: u64,
) -> Fig6Cell {
    let model = if level > 0.0 {
        Some(match ty {
            1 => ErrorModel::FlipNearTau {
                delta: calibrate_delta(&bundle.dataset, tau, level, BandErrorKind::FlipNearTau),
            },
            2 => ErrorModel::UnderestimationBias {
                delta: calibrate_delta(
                    &bundle.dataset,
                    tau,
                    level,
                    BandErrorKind::UnderestimationBias,
                ),
            },
            3 => ErrorModel::FlipRandom { fraction: level },
            4 => ErrorModel::GoodToBad {
                fraction_of_good: calibrate_good_to_bad_fraction(clean, level),
            },
            other => panic!("unknown error type {other}"),
        })
    } else {
        None
    };
    // Harvard: trace replay with errors applied at measurement time;
    // static datasets: label matrix injection, then random-order
    // training.
    let (system, achieved) = if bundle.name == "Harvard" {
        let errors: Vec<ErrorModel> = model.into_iter().collect();
        train_trace_class(
            &trio.harvard_trace,
            tau,
            default_config(bundle.k, seed ^ 0x000f_160b),
            &errors,
            seed ^ (ty as u64) << 8 ^ 0xf16,
        )
    } else {
        let mut noisy = clean.clone();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (ty as u64) << 8 ^ 0xf16);
        let changed = match model {
            Some(m) => inject(&mut noisy, &bundle.dataset, m, &mut rng),
            None => 0,
        };
        let system = train_class(&noisy, default_config(bundle.k, seed ^ 0x000f_160b), ticks);
        (system, changed as f64 / clean.mask.count_known() as f64)
    };
    Fig6Cell {
        dataset: bundle.name.into(),
        error_type: ty,
        level,
        achieved_level: achieved,
        auc: auc_of(&system, clean),
    }
}

impl Fig6 {
    /// AUC for a (dataset, type, level) cell.
    pub fn auc(&self, dataset: &str, ty: u8, level: f64) -> Option<f64> {
        self.cells
            .iter()
            .find(|c| c.dataset == dataset && c.error_type == ty && c.level == level)
            .map(|c| c.auc)
    }

    /// The paper's claim: random errors (Type 3/4) hurt more than
    /// near-τ errors (Type 1/2) at the 15 % level, and near-τ errors
    /// keep the AUC close to clean.
    pub fn shape_holds(&self) -> bool {
        let near_tau_mild = ["Harvard", "Meridian", "HP-S3"].iter().all(|d| {
            match (self.auc(d, 1, 0.0), self.auc(d, 1, 0.15)) {
                (Some(clean), Some(noisy)) => noisy > clean - 0.12,
                _ => false,
            }
        });
        let random_hurts_more = ["Harvard", "Meridian", "HP-S3"].iter().all(|d| {
            match (self.auc(d, 1, 0.15), self.auc(d, 4, 0.15)) {
                (Some(t1), Some(t4)) => t4 < t1 + 0.01,
                _ => false,
            }
        });
        near_tau_mild && random_hurts_more
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_quick_scale() {
        let fig = run(&Scale::quick(), 41);
        // Harvard/Meridian: 2 types × 4 levels; HP-S3: 4 × 4.
        assert_eq!(fig.cells.len(), 2 * 4 + 2 * 4 + 4 * 4);
        assert!(fig.shape_holds(), "figure 6 robustness shape violated");
        // Achieved levels must track targets.
        for c in fig
            .cells
            .iter()
            .filter(|c| c.level > 0.0 && c.error_type != 2)
        {
            assert!(
                (c.achieved_level - c.level).abs() < 0.03,
                "{} type {} level {}: achieved {}",
                c.dataset,
                c.error_type,
                c.level,
                c.achieved_level
            );
        }
    }
}
