//! Experiment scale presets.
//!
//! The paper's full sizes (2500-node Meridian, 2.5 M Harvard
//! measurements) are reachable with [`Scale::paper`], but parameter
//! sweeps at that size take hours. [`Scale::standard`] keeps the exact
//! Harvard/HP-S3 node counts and scales Meridian and the trace volume
//! down — enough for every qualitative claim to hold — and is what the
//! experiment binaries use by default (`--paper` switches up,
//! `--quick` down).

use serde::{Deserialize, Serialize};

/// Node counts and budgets for one harness run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Scale {
    /// Harvard node count (paper: 226).
    pub harvard_nodes: usize,
    /// Meridian node count (paper: 2500).
    pub meridian_nodes: usize,
    /// HP-S3 node count (paper: 231).
    pub hps3_nodes: usize,
    /// Harvard dynamic trace volume (paper: 2 492 546).
    pub harvard_measurements: usize,
    /// Training budget in measurements per node, as a multiple of `k`
    /// (the paper observes convergence within 20×k; default trains to
    /// 30×k).
    pub budget_k_multiplier: usize,
    /// Neighbor count for Harvard (paper: 10).
    pub k_harvard: usize,
    /// Neighbor count for Meridian (paper: 32).
    pub k_meridian: usize,
    /// Neighbor count for HP-S3 (paper: 10).
    pub k_hps3: usize,
}

impl Scale {
    /// Small instance for unit/integration tests (seconds).
    pub fn quick() -> Self {
        Self {
            harvard_nodes: 60,
            meridian_nodes: 80,
            hps3_nodes: 60,
            harvard_measurements: 40_000,
            budget_k_multiplier: 25,
            k_harvard: 10,
            k_meridian: 16,
            k_hps3: 10,
        }
    }

    /// Default harness scale (minutes for the full suite).
    pub fn standard() -> Self {
        Self {
            harvard_nodes: 226,
            meridian_nodes: 500,
            hps3_nodes: 231,
            harvard_measurements: 400_000,
            budget_k_multiplier: 30,
            k_harvard: 10,
            k_meridian: 32,
            k_hps3: 10,
        }
    }

    /// The paper's sizes (hours for the sweep figures).
    pub fn paper() -> Self {
        Self {
            harvard_nodes: 226,
            meridian_nodes: 2500,
            hps3_nodes: 231,
            harvard_measurements: 2_492_546,
            budget_k_multiplier: 30,
            k_harvard: 10,
            k_meridian: 32,
            k_hps3: 10,
        }
    }

    /// Parses `--quick` / `--paper` from argv, defaulting to
    /// [`Scale::standard`].
    pub fn from_args(args: &[String]) -> Self {
        if args.iter().any(|a| a == "--paper") {
            Self::paper()
        } else if args.iter().any(|a| a == "--quick") {
            Self::quick()
        } else {
            Self::standard()
        }
    }

    /// Training tick budget for a dataset of `n` nodes with `k`
    /// neighbors: `n · k · budget_k_multiplier` total measurements
    /// (= `k · multiplier` per node on average).
    pub fn ticks(&self, n: usize, k: usize) -> usize {
        n * k * self.budget_k_multiplier
    }
}

/// The value following `flag` in argv (`--out FILE` style), if any —
/// the argument convention shared by the suite binaries
/// (`perf_suite`, `scenario_suite`).
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_ordered_by_size() {
        let q = Scale::quick();
        let s = Scale::standard();
        let p = Scale::paper();
        assert!(q.meridian_nodes < s.meridian_nodes);
        assert!(s.meridian_nodes <= p.meridian_nodes);
        assert_eq!(p.harvard_nodes, 226);
        assert_eq!(p.hps3_nodes, 231);
        assert_eq!(p.harvard_measurements, 2_492_546);
    }

    #[test]
    fn args_parsing() {
        assert_eq!(
            Scale::from_args(&["--paper".into()]).meridian_nodes,
            Scale::paper().meridian_nodes
        );
        assert_eq!(
            Scale::from_args(&["--quick".into()]).meridian_nodes,
            Scale::quick().meridian_nodes
        );
        assert_eq!(
            Scale::from_args(&[]).meridian_nodes,
            Scale::standard().meridian_nodes
        );
    }

    #[test]
    fn tick_budget() {
        let s = Scale::quick();
        assert_eq!(s.ticks(100, 10), 100 * 10 * 25);
    }
}
