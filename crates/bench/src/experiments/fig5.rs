//! Figure 5 — accuracy under the default configuration: ROC (a),
//! precision–recall (b), and AUC vs measurements per node (c).
//!
//! Harvard is trained by replaying its timestamped trace (the paper
//! uses the dynamic measurements in time order); Meridian and HP-S3
//! train on random-pair schedules. Expected shape: ROC hugging the
//! top-left, PR staying high, and convergence within ≈ 20×k
//! measurements per node.

use crate::experiments::scale::Scale;
use crate::experiments::training::{auc_of, default_config};
use crate::experiments::trio::Trio;
use dmf_core::provider::ClassLabelProvider;
use dmf_core::{Session, SessionBuilder};
use dmf_eval::collect_scores;
use dmf_eval::convergence::ConvergenceTracker;
use dmf_eval::pr::pr_curve;
use dmf_eval::roc::{auc, roc_curve};
use serde::{Deserialize, Serialize};

/// Down-sampled curve as (x, y) pairs.
pub type Curve = Vec<(f64, f64)>;

/// Per-dataset outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig5Dataset {
    /// Dataset name.
    pub dataset: String,
    /// ROC curve (FPR, TPR), down-sampled.
    pub roc: Curve,
    /// PR curve (recall, precision), down-sampled.
    pub pr: Curve,
    /// Convergence series (measurements/node ÷ k, AUC).
    pub convergence: Vec<(f64, f64)>,
    /// Final AUC.
    pub final_auc: f64,
    /// Measurements/node (in multiples of k) needed to reach
    /// 92 % of the final AUC (the knee of the curve; the long Zipf-skewed
    /// Harvard replay keeps creeping for hundreds of ×k afterwards).
    pub converged_at_times_k: Option<f64>,
}

/// The full figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig5 {
    /// The three datasets.
    pub datasets: Vec<Fig5Dataset>,
}

fn downsample(curve: &[(f64, f64)], max_points: usize) -> Curve {
    if curve.len() <= max_points {
        return curve.to_vec();
    }
    let step = curve.len() as f64 / max_points as f64;
    let mut out: Vec<(f64, f64)> = (0..max_points)
        .map(|i| curve[(i as f64 * step) as usize])
        .collect();
    out.push(*curve.last().expect("non-empty curve"));
    out
}

fn evaluate(
    system: &Session,
    class: &dmf_datasets::ClassMatrix,
    name: &str,
    tracker: ConvergenceTracker,
    k: usize,
) -> Fig5Dataset {
    let samples = collect_scores(class, &system.predicted_scores());
    let roc: Vec<(f64, f64)> = roc_curve(&samples).iter().map(|p| (p.fpr, p.tpr)).collect();
    let pr: Vec<(f64, f64)> = pr_curve(&samples)
        .iter()
        .map(|p| (p.recall, p.precision))
        .collect();
    let final_auc = auc(&samples);
    let converged_at = tracker
        .measurements_to_reach(final_auc * 0.92)
        .map(|m| m / k as f64);
    Fig5Dataset {
        dataset: name.to_string(),
        roc: downsample(&roc, 60),
        pr: downsample(&pr, 60),
        convergence: tracker
            .points()
            .iter()
            .map(|p| (p.avg_measurements_per_node / k as f64, p.auc))
            .collect(),
        final_auc,
        converged_at_times_k: converged_at,
    }
}

/// Runs the experiment. The three datasets are independent runs, so
/// they fan out across cores (order-stable; identical to the serial
/// loop byte for byte).
pub fn run(scale: &Scale, seed: u64) -> Fig5 {
    let trio = Trio::build(scale, seed);
    let datasets = crate::parallel::parallel_map(vec![0usize, 1, 2], |which| match which {
        // Harvard: replay the dynamic trace in chunks, tracking AUC.
        0 => {
            let bundle = &trio.harvard;
            let tau = bundle.dataset.median();
            let class = bundle.dataset.classify(tau);
            let mut system = SessionBuilder::from_config(default_config(bundle.k, seed))
                .nodes(bundle.dataset.len())
                .build()
                .expect("experiment config is valid");
            let mut tracker = ConvergenceTracker::new();
            let chunks = 25;
            let per_chunk = (trio.harvard_trace.len() / chunks).max(1);
            let mut replayed = 0usize;
            for chunk in trio.harvard_trace.measurements.chunks(per_chunk) {
                let sub = dmf_datasets::DynamicTrace {
                    name: "chunk".into(),
                    metric: trio.harvard_trace.metric,
                    nodes: trio.harvard_trace.nodes,
                    measurements: chunk.to_vec(),
                };
                system
                    .run_trace(&sub, tau)
                    .expect("trace matches the session");
                replayed += chunk.len();
                let a = auc_of(&system, &class);
                tracker.record(replayed as f64 / bundle.dataset.len() as f64, a);
            }
            evaluate(&system, &class, bundle.name, tracker, bundle.k)
        }
        // Meridian and HP-S3: random-pair schedule.
        _ => {
            let bundle = if which == 1 {
                &trio.meridian
            } else {
                &trio.hps3
            };
            let tau = bundle.dataset.median();
            let class = bundle.dataset.classify(tau);
            let mut provider = ClassLabelProvider::new(class.clone());
            let mut system = SessionBuilder::from_config(default_config(bundle.k, seed))
                .nodes(bundle.dataset.len())
                .build()
                .expect("experiment config is valid");
            let mut tracker = ConvergenceTracker::new();
            let total = scale.ticks(bundle.dataset.len(), bundle.k);
            let chunks = 25;
            let per_chunk = (total / chunks).max(1);
            let mut used = 0usize;
            while used < total {
                system
                    .run(per_chunk, &mut provider)
                    .expect("provider covers the session");
                used += per_chunk;
                tracker.record(system.avg_measurements_per_node(), auc_of(&system, &class));
            }
            evaluate(&system, &class, bundle.name, tracker, bundle.k)
        }
    });

    Fig5 { datasets }
}

impl Fig5 {
    /// The paper's convergence claim: every dataset converges within
    /// 20×k measurements per node (we allow the full budget as upper
    /// bound and check the 92 %-of-final point).
    pub fn converges_within(&self, times_k: f64) -> bool {
        self.datasets.iter().all(|d| {
            d.converged_at_times_k
                .map(|t| t <= times_k)
                .unwrap_or(false)
        })
    }

    /// Per-dataset convergence bound the release binaries assert: the
    /// paper's 20×k for the static datasets; the sub-scale Harvard
    /// replay's 92 %-of-final knee is noisy (the Zipf-skewed trace
    /// keeps creeping), so it alone gets head-room. The unit test pins
    /// the strict 20×k for all three at its own seed.
    pub fn convergence_bound(dataset: &str) -> f64 {
        if dataset == "Harvard" {
            30.0
        } else {
            20.0
        }
    }

    /// True when every dataset meets its [`convergence_bound`].
    ///
    /// [`convergence_bound`]: Self::convergence_bound
    pub fn meets_convergence_bounds(&self) -> bool {
        self.datasets.iter().all(|d| {
            d.converged_at_times_k
                .map(|t| t <= Self::convergence_bound(&d.dataset))
                .unwrap_or(false)
        })
    }

    /// Panics (with the offending dataset) when a convergence bound is
    /// violated — the shared gate of `fig5_accuracy` and `run_all`.
    pub fn assert_convergence_bounds(&self) {
        for d in &self.datasets {
            let bound = Self::convergence_bound(&d.dataset);
            let at = d.converged_at_times_k.expect("convergence point recorded");
            assert!(
                at <= bound,
                "{}: Figure 5c convergence claim violated ({at} > {bound} ×k)",
                d.dataset
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_quick_scale() {
        let fig = run(&Scale::quick(), 21);
        assert_eq!(fig.datasets.len(), 3);
        for d in &fig.datasets {
            assert!(
                d.final_auc > 0.8,
                "{}: final AUC {}",
                d.dataset,
                d.final_auc
            );
            assert!(!d.roc.is_empty() && !d.pr.is_empty());
            assert!(!d.convergence.is_empty());
        }
        assert!(
            fig.converges_within(20.0),
            "convergence must land within 20×k measurements per node"
        );
    }
}
