//! Tracked serving-layer load generation: qps and tail latency for
//! the sharded prediction service (`load_gen` binary; the
//! `service_runs` field of `BENCH.json`, schema v5).
//!
//! The serving layer's pitch is operational: one pipelined connection
//! sustains a deep in-flight window with bounded memory, and sharding
//! the node space raises throughput without perturbing a single bit
//! of the answers (the conformance suite owns the correctness half;
//! this module tracks the throughput half). Each [`ServiceRun`]
//! drives mixed traffic — RTT-class updates, scalar predictions,
//! neighbor rankings — through the *full* wire path: framed client
//! encoding, a loopback byte pipe, per-connection server threads,
//! the shard router. Latency is measured per request from submission
//! to decoded response, so the percentiles include framing, queueing
//! behind the pipeline, and shard-queue contention, not just the
//! matrix arithmetic — and is reported both overall and *per request
//! kind*, because the write path (single-writer batch drain) and the
//! read path (lock-free epoch reads) have different tails by design.
//!
//! Every preset measures a matrix of shard counts × traffic mixes
//! ([`MIXES`]): the default mix mirrors a training deployment (1/3
//! updates), the read-heavy mix a serving-dominated one. The run also
//! records the shard write path's batching behaviour (batch-size and
//! queue-depth distributions from
//! [`dmf_service::WorkerStatsSnapshot`]), which
//! is the mechanism the shard-scaling pitch rests on.
//!
//! The workload is fixed-work per scale preset (request count,
//! connection count, in-flight depth are hard-coded per preset), so
//! qps across PRs is comparable the same way the `perf` wall-clock
//! metrics are.

use dmf_service::{
    loopback_pair, serve_loopback, PredictionService, Response, ServerConnection, ServiceClient,
    WorkerStatsSnapshot, DEFAULT_MAX_IN_FLIGHT,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crate::experiments::training::default_config;

/// Config seed shared by every run, so shard count and mix are the
/// only variables across the runs of one report.
const SERVICE_SEED: u64 = 53;

/// Shard counts the full presets sweep: the single-shard baseline,
/// the tracked sharded deployment, and the scaling tail.
pub const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Shard counts the quick preset (CI smoke) sweeps.
pub const QUICK_SHARD_COUNTS: [usize; 2] = [1, 4];

/// Traffic mixes every preset measures, as read percentages: the
/// default training mix (1/3 updates, matching the conformance
/// schedules) and a serving-dominated read-heavy mix.
pub const MIXES: [u32; 2] = [67, 90];

/// Load parameters per preset: population, requests per connection,
/// concurrent connections, and client-side in-flight depth.
fn service_workload(scale_name: &str) -> (usize, usize, usize, usize) {
    match scale_name {
        "paper" => (512, 40_000, 4, 64),
        "standard" => (256, 20_000, 4, 64),
        _ => (64, 2_500, 2, 32),
    }
}

/// The shard counts a preset sweeps by default.
pub fn shard_counts(scale_name: &str) -> &'static [usize] {
    match scale_name {
        "paper" | "standard" => &SHARD_COUNTS,
        _ => &QUICK_SHARD_COUNTS,
    }
}

/// The request kind lane a sample lands in.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Kind {
    Update,
    Predict,
    Rank,
}

/// The deterministic mix: request `s` of a connection is an update
/// with probability `100 - read_pct` (hashed, so update positions are
/// spread rather than strided), and reads split evenly between
/// predictions and rank queries.
fn kind_for(s: u32, read_pct: u32) -> Kind {
    let roll = (s.wrapping_mul(0x9E37_79B1) >> 16) % 100;
    if roll >= read_pct {
        Kind::Update
    } else if roll.is_multiple_of(2) {
        Kind::Predict
    } else {
        Kind::Rank
    }
}

/// Latency summary of one request-kind lane within a run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KindLatency {
    /// Requests of this kind completed.
    pub requests: usize,
    /// Median submission-to-response latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile submission-to-response latency, microseconds.
    pub p99_us: f64,
}

/// The shard write path's batching behaviour over one run, summed
/// across shards (from [`dmf_service::WorkerStatsSnapshot`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BatchingStats {
    /// Update batches drained (write-lock acquisitions that did work).
    pub batches: u64,
    /// Updates applied through those batches.
    pub updates: u64,
    /// Batches drained by the dedicated shard workers (the rest were
    /// drained inline by submitting connections acting as combiners).
    pub worker_batches: u64,
    /// Mean updates per batch.
    pub mean_batch: f64,
    /// Largest single batch observed.
    pub max_batch: u64,
    /// Deepest update-queue backlog observed at enqueue time.
    pub max_queue_depth: u64,
    /// Batch-size distribution over [`dmf_service::DIST_BUCKETS`]
    /// (`<=1, <=2, <=4, ... <=64, overflow`).
    pub batch_hist: Vec<u64>,
    /// Queue-depth distribution over the same buckets.
    pub depth_hist: Vec<u64>,
}

impl BatchingStats {
    fn from_shards(stats: &[WorkerStatsSnapshot]) -> Self {
        let mut total = WorkerStatsSnapshot::default();
        for s in stats {
            total.merge(s);
        }
        BatchingStats {
            batches: total.batches,
            updates: total.updates,
            worker_batches: total.worker_batches,
            mean_batch: total.mean_batch(),
            max_batch: total.max_batch,
            max_queue_depth: total.max_depth,
            batch_hist: total.batch_hist.to_vec(),
            depth_hist: total.depth_hist.to_vec(),
        }
    }
}

/// One load-generation run against the sharded service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceRun {
    /// Shards the node space was partitioned into.
    pub shards: usize,
    /// Percentage of read requests in the mix (the rest are updates).
    pub read_pct: u32,
    /// Concurrent pipelined connections.
    pub connections: usize,
    /// Service population (node count).
    pub nodes: usize,
    /// Total requests completed across all connections.
    pub requests: usize,
    /// Client-side in-flight depth each connection sustained.
    pub max_in_flight: usize,
    /// The headline metric: `requests / elapsed_s`, all connections.
    pub qps: f64,
    /// Median submission-to-response latency, microseconds, all kinds.
    pub p50_us: f64,
    /// 99th-percentile submission-to-response latency, microseconds,
    /// all kinds.
    pub p99_us: f64,
    /// The update lane (the single-writer batch path).
    pub update: KindLatency,
    /// The prediction lane (lock-free epoch reads).
    pub predict: KindLatency,
    /// The rank lane (lock-free cross-shard fan-out).
    pub rank: KindLatency,
    /// The write path's batching behaviour, summed across shards.
    pub batching: BatchingStats,
    /// Overload rejections observed client-side (the depth stays
    /// below the server window, so a nonzero count is a regression).
    pub overload_rejections: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
}

/// Latency samples and error count from one connection's client loop.
struct ConnStats {
    /// `(kind, latency_us)` per completed request, completion order.
    latencies_us: Vec<(Kind, f64)>,
    overloads: u64,
}

/// Drives one pipelined connection over a loopback pipe: keeps up to
/// `depth` requests in flight, mixing updates, predictions and rank
/// queries per `read_pct`, and times each request from submission to
/// decoded response. The server side runs [`serve_loopback`] on its
/// own thread, sharing `svc` with every other connection.
fn drive_connection(
    svc: Arc<PredictionService>,
    nodes: u32,
    requests: u32,
    depth: usize,
    read_pct: u32,
    conn_id: u32,
) -> ConnStats {
    let (server_end, client_end) = loopback_pair();
    let conn = ServerConnection::new(svc, DEFAULT_MAX_IN_FLIGHT);
    let server = thread::spawn(move || serve_loopback(conn, server_end));

    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    let mut rx = Vec::new();
    let mut submit_times: VecDeque<(Kind, Instant)> = VecDeque::with_capacity(depth);
    let mut stats = ConnStats {
        latencies_us: Vec::with_capacity(requests as usize),
        overloads: 0,
    };
    let mut submitted = 0u32;
    while stats.latencies_us.len() < requests as usize {
        while submitted < requests && client.outstanding() < depth {
            let s = submitted.wrapping_add(conn_id.wrapping_mul(0x9E37));
            let i = (s.wrapping_mul(11)) % nodes;
            let j = (i + 1 + s % (nodes - 1)) % nodes;
            let kind = kind_for(s, read_pct);
            match kind {
                Kind::Update => {
                    let x = if s.is_multiple_of(5) { -1.0 } else { 1.0 };
                    client.submit_update(i, j, x, &mut wire)
                }
                Kind::Predict => client.submit_predict(i, j, &mut wire),
                Kind::Rank => client.submit_rank(i, 8, &mut wire),
            };
            submit_times.push_back((kind, Instant::now()));
            submitted += 1;
        }
        if !wire.is_empty() {
            client_end.send(&wire);
            wire.clear();
        }
        rx.clear();
        if client_end.recv(&mut rx) == 0 {
            break;
        }
        client.ingest(&rx);
        while let Some(resp) = client.poll().expect("clean response stream") {
            // In-order execution below the server window: responses
            // pair with submissions front-to-back.
            let (kind, t) = submit_times.pop_front().expect("response has a submission");
            stats
                .latencies_us
                .push((kind, t.elapsed().as_secs_f64() * 1e6));
            if matches!(resp, Response::Error { .. }) {
                stats.overloads += 1;
            }
        }
    }
    client_end.close();
    server
        .join()
        .expect("server thread")
        .expect("no framing errors under clean load");
    stats
}

/// `p`-th percentile (0..=1) of an unsorted sample set.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// Summarizes one kind's lane out of the pooled samples.
fn lane(samples: &[(Kind, f64)], kind: Kind) -> KindLatency {
    let mut lane: Vec<f64> = samples
        .iter()
        .filter(|(k, _)| *k == kind)
        .map(|&(_, us)| us)
        .collect();
    KindLatency {
        requests: lane.len(),
        p50_us: percentile(&mut lane, 0.50),
        p99_us: percentile(&mut lane, 0.99),
    }
}

/// Runs one load-generation pass at `shards` shards and `read_pct`.
pub fn run_one(
    nodes: usize,
    requests_per_conn: usize,
    connections: usize,
    depth: usize,
    shards: usize,
    read_pct: u32,
) -> ServiceRun {
    let cfg = default_config(10, SERVICE_SEED);
    let svc = Arc::new(
        PredictionService::build(cfg, nodes, shards).expect("bench service configuration is valid"),
    );

    let start = Instant::now();
    let clients: Vec<_> = (0..connections)
        .map(|c| {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                drive_connection(
                    svc,
                    nodes as u32,
                    requests_per_conn as u32,
                    depth,
                    read_pct,
                    c as u32,
                )
            })
        })
        .collect();
    let stats: Vec<ConnStats> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed_s = start.elapsed().as_secs_f64();
    let batching = BatchingStats::from_shards(&svc.worker_stats());

    let samples: Vec<(Kind, f64)> = stats.iter().flat_map(|s| s.latencies_us.clone()).collect();
    let mut latencies: Vec<f64> = samples.iter().map(|&(_, us)| us).collect();
    let requests = latencies.len();
    ServiceRun {
        shards,
        read_pct,
        connections,
        nodes,
        requests,
        max_in_flight: depth,
        qps: requests as f64 / elapsed_s.max(1e-12),
        p50_us: percentile(&mut latencies, 0.50),
        p99_us: percentile(&mut latencies, 0.99),
        update: lane(&samples, Kind::Update),
        predict: lane(&samples, Kind::Predict),
        rank: lane(&samples, Kind::Rank),
        batching,
        overload_rejections: stats.iter().map(|s| s.overloads).sum(),
        elapsed_s,
    }
}

/// Runs the preset workload at each `(mix, shard count)` pair
/// (`load_gen --shards/--read-pct/--connections` hook in here; `0`
/// for `connections` keeps the preset's default).
pub fn run_matrix(
    scale_name: &str,
    mixes: &[u32],
    shards: &[usize],
    connections_override: usize,
) -> Vec<ServiceRun> {
    let (nodes, requests_per_conn, preset_conns, depth) = service_workload(scale_name);
    let connections = if connections_override == 0 {
        preset_conns
    } else {
        connections_override
    };
    let mut runs = Vec::with_capacity(mixes.len() * shards.len());
    for &read_pct in mixes {
        for &s in shards {
            runs.push(run_one(
                nodes,
                requests_per_conn,
                connections,
                depth,
                s,
                read_pct,
            ));
        }
    }
    runs
}

/// Runs the preset workload over the full tracked matrix — the record
/// in `BENCH.json`: every [`MIXES`] entry × every preset shard count.
pub fn run(scale_name: &str) -> Vec<ServiceRun> {
    run_matrix(scale_name, &MIXES, shard_counts(scale_name), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_load_gen_covers_the_mix_by_shard_matrix() {
        let runs = run("quick");
        assert_eq!(runs.len(), MIXES.len() * QUICK_SHARD_COUNTS.len());
        let mut expect = Vec::new();
        for &mix in &MIXES {
            for &shards in &QUICK_SHARD_COUNTS {
                expect.push((mix, shards));
            }
        }
        for (run, (mix, shards)) in runs.iter().zip(expect) {
            assert_eq!(run.shards, shards);
            assert_eq!(run.read_pct, mix);
            assert_eq!(run.nodes, 64);
            assert_eq!(run.requests, run.connections * 2_500);
            assert_eq!(
                run.requests,
                run.update.requests + run.predict.requests + run.rank.requests,
                "every request lands in exactly one lane"
            );
            assert!(run.update.requests > 0, "mix {mix}: updates present");
            assert!(
                run.predict.requests + run.rank.requests
                    > run.requests * (mix as usize).saturating_sub(15) / 100,
                "mix {mix}: read share near the knob"
            );
            assert!(run.qps > 0.0, "{shards} shards: no throughput");
            assert!(
                run.p50_us > 0.0 && run.p50_us <= run.p99_us,
                "{shards} shards: percentiles out of order ({} vs {})",
                run.p50_us,
                run.p99_us
            );
            assert_eq!(
                run.batching.updates as usize, run.update.requests,
                "every update drained through the batch machinery"
            );
            assert!(run.batching.batches > 0);
            assert!(run.batching.mean_batch >= 1.0);
            assert_eq!(
                run.batching.batch_hist.iter().sum::<u64>(),
                run.batching.batches,
                "batch histogram is complete"
            );
            assert_eq!(
                run.overload_rejections, 0,
                "{shards} shards: depth below the window must never overload"
            );
            assert!(run.elapsed_s > 0.0);
        }
    }

    #[test]
    fn the_mix_knob_tracks_the_requested_read_share() {
        for read_pct in [50u32, 67, 90] {
            let updates = (0..10_000u32)
                .filter(|&s| matches!(kind_for(s, read_pct), Kind::Update))
                .count();
            let want = (100 - read_pct) as f64 / 100.0;
            let got = updates as f64 / 10_000.0;
            assert!(
                (got - want).abs() < 0.03,
                "read_pct {read_pct}: update share {got} vs {want}"
            );
        }
    }

    #[test]
    fn percentiles_pick_the_expected_ranks() {
        let mut s = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut s, 0.50), 3.0);
        assert_eq!(percentile(&mut s, 0.99), 5.0);
        assert_eq!(percentile(&mut s, 0.0), 1.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }
}
