//! Tracked serving-layer load generation: qps and tail latency for
//! the sharded prediction service (`load_gen` binary; the
//! `service_runs` field of `BENCH.json`, schema v4).
//!
//! The serving layer's pitch is operational: one pipelined connection
//! sustains a deep in-flight window with bounded memory, and sharding
//! the node space raises throughput without perturbing a single bit
//! of the answers (the conformance suite owns the correctness half;
//! this module tracks the throughput half). Each [`ServiceRun`]
//! drives mixed traffic — RTT-class updates, scalar predictions,
//! neighbor rankings — through the *full* wire path: framed client
//! encoding, a loopback byte pipe, per-connection server threads,
//! the shard router. Latency is measured per request from submission
//! to decoded response, so the percentiles include framing, queueing
//! behind the pipeline, and shard-lock contention, not just the
//! matrix arithmetic.
//!
//! The workload is fixed-work per scale preset (request count,
//! connection count, in-flight depth are hard-coded per preset), so
//! qps across PRs is comparable the same way the `perf` wall-clock
//! metrics are.

use dmf_service::{
    loopback_pair, serve_loopback, PredictionService, Response, ServerConnection, ServiceClient,
    DEFAULT_MAX_IN_FLIGHT,
};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use crate::experiments::training::default_config;

/// Config seed shared by every run, so shard count is the only
/// variable across the runs of one report.
const SERVICE_SEED: u64 = 53;

/// Shard counts every preset measures: the single-shard baseline and
/// the sharded deployment the tentpole targets.
pub const SHARD_COUNTS: [usize; 2] = [1, 4];

/// Load parameters per preset: population, requests per connection,
/// concurrent connections, and client-side in-flight depth.
fn service_workload(scale_name: &str) -> (usize, usize, usize, usize) {
    match scale_name {
        "paper" => (512, 40_000, 4, 64),
        "standard" => (256, 20_000, 4, 64),
        _ => (64, 2_500, 2, 32),
    }
}

/// One load-generation run against the sharded service.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServiceRun {
    /// Shards the node space was partitioned into.
    pub shards: usize,
    /// Concurrent pipelined connections.
    pub connections: usize,
    /// Service population (node count).
    pub nodes: usize,
    /// Total requests completed across all connections.
    pub requests: usize,
    /// Client-side in-flight depth each connection sustained.
    pub max_in_flight: usize,
    /// The headline metric: `requests / elapsed_s`, all connections.
    pub qps: f64,
    /// Median submission-to-response latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile submission-to-response latency, microseconds.
    pub p99_us: f64,
    /// Overload rejections observed client-side (the depth stays
    /// below the server window, so a nonzero count is a regression).
    pub overload_rejections: u64,
    /// Wall-clock seconds for the whole run.
    pub elapsed_s: f64,
}

/// Latency samples and error count from one connection's client loop.
struct ConnStats {
    latencies_us: Vec<f64>,
    overloads: u64,
}

/// Drives one pipelined connection over a loopback pipe: keeps up to
/// `depth` requests in flight, mixing updates, predictions and rank
/// queries, and times each request from submission to decoded
/// response. The server side runs [`serve_loopback`] on its own
/// thread, sharing `svc` with every other connection.
fn drive_connection(
    svc: Arc<PredictionService>,
    nodes: u32,
    requests: u32,
    depth: usize,
    conn_id: u32,
) -> ConnStats {
    let (server_end, client_end) = loopback_pair();
    let conn = ServerConnection::new(svc, DEFAULT_MAX_IN_FLIGHT);
    let server = thread::spawn(move || serve_loopback(conn, server_end));

    let mut client = ServiceClient::new();
    let mut wire = Vec::new();
    let mut rx = Vec::new();
    let mut submit_times: VecDeque<Instant> = VecDeque::with_capacity(depth);
    let mut stats = ConnStats {
        latencies_us: Vec::with_capacity(requests as usize),
        overloads: 0,
    };
    let mut submitted = 0u32;
    while stats.latencies_us.len() < requests as usize {
        while submitted < requests && client.outstanding() < depth {
            let s = submitted.wrapping_add(conn_id.wrapping_mul(0x9E37));
            let i = (s.wrapping_mul(11)) % nodes;
            let j = (i + 1 + s % (nodes - 1)) % nodes;
            match s % 3 {
                0 => {
                    let x = if s.is_multiple_of(5) { -1.0 } else { 1.0 };
                    client.submit_update(i, j, x, &mut wire)
                }
                1 => client.submit_predict(i, j, &mut wire),
                _ => client.submit_rank(i, 8, &mut wire),
            };
            submit_times.push_back(Instant::now());
            submitted += 1;
        }
        if !wire.is_empty() {
            client_end.send(&wire);
            wire.clear();
        }
        rx.clear();
        if client_end.recv(&mut rx) == 0 {
            break;
        }
        client.ingest(&rx);
        while let Some(resp) = client.poll().expect("clean response stream") {
            // In-order execution below the server window: responses
            // pair with submissions front-to-back.
            let t = submit_times.pop_front().expect("response has a submission");
            stats.latencies_us.push(t.elapsed().as_secs_f64() * 1e6);
            if matches!(resp, Response::Error { .. }) {
                stats.overloads += 1;
            }
        }
    }
    client_end.close();
    server
        .join()
        .expect("server thread")
        .expect("no framing errors under clean load");
    stats
}

/// `p`-th percentile (0..=1) of an unsorted sample set.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let idx = ((samples.len() - 1) as f64 * p).round() as usize;
    samples[idx]
}

/// Runs one load-generation pass at `shards` shards.
pub fn run_one(
    nodes: usize,
    requests_per_conn: usize,
    connections: usize,
    depth: usize,
    shards: usize,
) -> ServiceRun {
    let cfg = default_config(10, SERVICE_SEED);
    let svc = Arc::new(
        PredictionService::build(cfg, nodes, shards).expect("bench service configuration is valid"),
    );

    let start = Instant::now();
    let clients: Vec<_> = (0..connections)
        .map(|c| {
            let svc = Arc::clone(&svc);
            thread::spawn(move || {
                drive_connection(svc, nodes as u32, requests_per_conn as u32, depth, c as u32)
            })
        })
        .collect();
    let stats: Vec<ConnStats> = clients
        .into_iter()
        .map(|h| h.join().expect("client thread"))
        .collect();
    let elapsed_s = start.elapsed().as_secs_f64();

    let mut latencies: Vec<f64> = stats.iter().flat_map(|s| s.latencies_us.clone()).collect();
    let requests = latencies.len();
    ServiceRun {
        shards,
        connections,
        nodes,
        requests,
        max_in_flight: depth,
        qps: requests as f64 / elapsed_s.max(1e-12),
        p50_us: percentile(&mut latencies, 0.50),
        p99_us: percentile(&mut latencies, 0.99),
        overload_rejections: stats.iter().map(|s| s.overloads).sum(),
        elapsed_s,
    }
}

/// Runs the preset workload at each of the given shard counts
/// (`load_gen --shards` hooks in here).
pub fn run_with(scale_name: &str, shard_counts: &[usize]) -> Vec<ServiceRun> {
    let (nodes, requests_per_conn, connections, depth) = service_workload(scale_name);
    shard_counts
        .iter()
        .map(|&shards| run_one(nodes, requests_per_conn, connections, depth, shards))
        .collect()
}

/// Runs the preset workload at every [`SHARD_COUNTS`] entry — the
/// record tracked in `BENCH.json`.
pub fn run(scale_name: &str) -> Vec<ServiceRun> {
    run_with(scale_name, &SHARD_COUNTS)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_load_gen_covers_both_shard_counts() {
        let runs = run("quick");
        assert_eq!(runs.len(), SHARD_COUNTS.len());
        for (run, &shards) in runs.iter().zip(&SHARD_COUNTS) {
            assert_eq!(run.shards, shards);
            assert_eq!(run.nodes, 64);
            assert_eq!(run.requests, run.connections * 2_500);
            assert!(run.qps > 0.0, "{shards} shards: no throughput");
            assert!(
                run.p50_us > 0.0 && run.p50_us <= run.p99_us,
                "{shards} shards: percentiles out of order ({} vs {})",
                run.p50_us,
                run.p99_us
            );
            assert_eq!(
                run.overload_rejections, 0,
                "{shards} shards: depth below the window must never overload"
            );
            assert!(run.elapsed_s > 0.0);
        }
    }

    #[test]
    fn percentiles_pick_the_expected_ranks() {
        let mut s = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut s, 0.50), 3.0);
        assert_eq!(percentile(&mut s, 0.99), 5.0);
        assert_eq!(percentile(&mut s, 0.0), 1.0);
        assert_eq!(percentile(&mut [], 0.5), 0.0);
    }
}
