//! Table 1 — impact of τ on the portion of "good" paths.
//!
//! For good-portions {10, 25, 50, 75, 90} % the paper reports the τ
//! achieving them on each dataset (ms for the RTT datasets, Mbps for
//! HP-S3). τ grows with portion for RTT and shrinks for ABW.

use crate::experiments::scale::Scale;
use crate::experiments::trio::Trio;
use dmf_datasets::Metric;
use serde::{Deserialize, Serialize};

/// The portions the paper sweeps.
pub const PORTIONS: [f64; 5] = [0.10, 0.25, 0.50, 0.75, 0.90];

/// One dataset column of Table 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1Column {
    /// Dataset name.
    pub dataset: String,
    /// Unit string (ms / Mbps).
    pub unit: String,
    /// Whether the metric is RTT (for the monotonicity check).
    pub metric: Metric,
    /// `(portion, tau, achieved portion)` rows.
    pub rows: Vec<(f64, f64, f64)>,
}

/// The full table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table1 {
    /// Harvard, Meridian, HP-S3 columns.
    pub columns: Vec<Table1Column>,
}

/// Runs the experiment.
pub fn run(scale: &Scale, seed: u64) -> Table1 {
    let trio = Trio::build(scale, seed);
    let columns = trio
        .bundles()
        .iter()
        .map(|bundle| {
            let rows = PORTIONS
                .iter()
                .map(|&portion| {
                    let tau = bundle.dataset.tau_for_good_portion(portion);
                    (portion, tau, bundle.dataset.good_fraction(tau))
                })
                .collect();
            Table1Column {
                dataset: bundle.name.to_string(),
                unit: bundle.dataset.metric.unit().to_string(),
                metric: bundle.dataset.metric,
                rows,
            }
        })
        .collect();
    Table1 { columns }
}

impl Table1 {
    /// Checks the paper's qualitative structure: τ monotone increasing
    /// with portion for RTT, decreasing for ABW; achieved ≈ requested.
    pub fn structure_holds(&self) -> bool {
        self.columns.iter().all(|col| {
            let monotone = col.rows.windows(2).all(|w| {
                if col.metric.lower_is_better() {
                    w[0].1 <= w[1].1
                } else {
                    w[0].1 >= w[1].1
                }
            });
            let achieves = col.rows.iter().all(|&(p, _, a)| (p - a).abs() < 0.05);
            monotone && achieves
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_structure() {
        let t = run(&Scale::quick(), 7);
        assert_eq!(t.columns.len(), 3);
        assert!(t.structure_holds());
        // Median row (50%) must match the calibrated medians.
        let med = |name: &str| t.columns.iter().find(|c| c.dataset == name).unwrap().rows[2].1;
        assert!((med("Harvard") - 131.6).abs() < 1.0);
        assert!((med("Meridian") - 56.4).abs() < 1.0);
        assert!((med("HP-S3") - 43.1).abs() < 1.0);
    }
}
