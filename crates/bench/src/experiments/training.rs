//! Shared training/evaluation plumbing for the experiment modules.
//!
//! The paper's protocol differs per dataset: "the static measurements
//! in Meridian and HP-S3 are used in random order, whereas the dynamic
//! measurements in Harvard are used in time order according to the
//! timestamps" (§6.1). [`BundleTrainer`] implements that dispatch so
//! every experiment module trains each dataset the way the paper did.

use crate::experiments::scale::Scale;
use crate::experiments::trio::{DatasetBundle, Trio};
use dmf_core::provider::ClassLabelProvider;
use dmf_core::{DmfsgdConfig, Loss, PredictionMode, Session, SessionBuilder};
use dmf_datasets::{ClassMatrix, Dataset, DynamicTrace, Metric};
use dmf_eval::collect_scores;
use dmf_eval::roc::auc;
use dmf_simnet::errors::ErrorModel;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Builds the paper-default configuration for a dataset with neighbor
/// count `k`, seeded deterministically.
pub fn default_config(k: usize, seed: u64) -> DmfsgdConfig {
    let mut cfg = DmfsgdConfig::paper_defaults().with_k(k);
    cfg.seed = seed;
    cfg
}

/// Trains a class-based DMFSGD session on the labels of `class` for
/// `ticks` measurements (the random-order protocol).
pub fn train_class(class: &ClassMatrix, config: DmfsgdConfig, ticks: usize) -> Session {
    let mut provider = ClassLabelProvider::new(class.clone());
    let mut session = SessionBuilder::from_config(config)
        .nodes(class.len())
        .build()
        .expect("experiment config is valid");
    session
        .run(ticks, &mut provider)
        .expect("provider covers the session");
    session
}

/// Applies an error model to one on-the-fly measurement: returns the
/// (possibly flipped) label. Mirrors `dmf_simnet::errors::inject`, but
/// at measurement time — which is where the paper's errors physically
/// originate (flaky tools, malicious targets, bursts).
fn corrupt_label(
    x: f64,
    value: f64,
    tau: f64,
    metric: Metric,
    model: &ErrorModel,
    rng: &mut impl Rng,
) -> f64 {
    match *model {
        ErrorModel::FlipNearTau { delta } => {
            if (value - tau).abs() <= delta && rng.gen::<f64>() < 0.5 {
                -x
            } else {
                x
            }
        }
        ErrorModel::UnderestimationBias { delta } => {
            let gap = if metric.lower_is_better() {
                tau - value
            } else {
                value - tau
            };
            if gap > 0.0 && gap <= delta && x > 0.0 {
                -1.0
            } else {
                x
            }
        }
        ErrorModel::FlipRandom { fraction } => {
            if rng.gen::<f64>() < fraction {
                -x
            } else {
                x
            }
        }
        ErrorModel::GoodToBad { fraction_of_good } => {
            if x > 0.0 && rng.gen::<f64>() < fraction_of_good {
                -1.0
            } else {
                x
            }
        }
    }
}

/// Replays a dynamic trace in time order, classifying each measurement
/// at `tau` and passing it through the given error models in sequence.
/// Returns the trained system and the fraction of labels corrupted.
pub fn train_trace_class(
    trace: &DynamicTrace,
    tau: f64,
    config: DmfsgdConfig,
    errors: &[ErrorModel],
    error_seed: u64,
) -> (Session, f64) {
    let mut session = SessionBuilder::from_config(config)
        .nodes(trace.nodes)
        .build()
        .expect("experiment config is valid");
    let mut rng = ChaCha8Rng::seed_from_u64(error_seed);
    let mut corrupted = 0usize;
    for m in &trace.measurements {
        let clean = trace.metric.classify(m.value, tau);
        let mut x = clean;
        for model in errors {
            x = corrupt_label(x, m.value, tau, trace.metric, model, &mut rng);
        }
        if x != clean {
            corrupted += 1;
        }
        session
            .apply_measurement(m.from, m.to, x, trace.metric)
            .expect("trace pairs are in range");
    }
    let level = corrupted as f64 / trace.measurements.len().max(1) as f64;
    (session, level)
}

/// Trains a quantity-based (regression) system on raw values in random
/// order.
pub fn train_quantity(dataset: &Dataset, k: usize, seed: u64, ticks: usize) -> Session {
    let scale = dataset.median();
    let mut cfg = default_config(k, seed).quantity(scale);
    cfg.sgd.loss = Loss::L2;
    let mut provider = dmf_core::provider::QuantityProvider::new(dataset.clone(), scale);
    let mut session = SessionBuilder::from_config(cfg)
        .nodes(dataset.len())
        .build()
        .expect("experiment config is valid");
    session
        .run(ticks, &mut provider)
        .expect("provider covers the session");
    session
}

/// Trains a quantity-based system by trace replay (Harvard regression).
///
/// Raw application-level traces contain congestion spikes several
/// times above the pair median; the unbounded L2 gradient would make
/// plain SGD diverge on them (the reason the paper's regression
/// comparator works on stable values). Spikes are clipped at 10× the
/// value scale — far above any median — and the step is halved, which
/// keeps the replay stable without affecting the ranking the
/// peer-selection experiment consumes.
pub fn train_quantity_trace(
    trace: &DynamicTrace,
    value_scale: f64,
    k: usize,
    seed: u64,
) -> Session {
    let mut cfg = default_config(k, seed).quantity(value_scale);
    cfg.sgd.loss = Loss::L2;
    cfg.sgd.eta = 0.05;
    let mut clipped = trace.clone();
    for m in &mut clipped.measurements {
        m.value = m.value.min(value_scale * 10.0);
    }
    let mut session = SessionBuilder::from_config(cfg)
        .nodes(trace.nodes)
        .build()
        .expect("experiment config is valid");
    session
        .run_trace(&clipped, value_scale /* unused in quantity mode */)
        .expect("trace matches the session");
    session
}

/// Paper-protocol trainer: trace replay for Harvard, random-order
/// label training for the static datasets.
pub struct BundleTrainer<'a> {
    /// The dataset trio (holds the Harvard trace).
    pub trio: &'a Trio,
    /// The scale (tick budgets).
    pub scale: &'a Scale,
}

impl BundleTrainer<'_> {
    /// Trains on `class` (whose labels may already carry injected
    /// errors for the static datasets). For Harvard, the trace is
    /// replayed at `class.tau` with `trace_errors` applied per
    /// measurement instead.
    pub fn train(
        &self,
        bundle: &DatasetBundle,
        class: &ClassMatrix,
        config: DmfsgdConfig,
        trace_errors: &[ErrorModel],
        error_seed: u64,
    ) -> Session {
        if bundle.name == "Harvard" {
            let (system, _) = train_trace_class(
                &self.trio.harvard_trace,
                class.tau,
                config,
                trace_errors,
                error_seed,
            );
            system
        } else {
            let ticks = self.scale.ticks(bundle.dataset.len(), config.k);
            train_class(class, config, ticks)
        }
    }
}

/// AUC of a trained session against reference labels.
pub fn auc_of(session: &Session, reference: &ClassMatrix) -> f64 {
    auc(&collect_scores(reference, &session.predicted_scores()))
}

/// Materializes the session's predicted quantities (for regression
/// peer selection): raw score × value scale.
pub fn predicted_quantities(session: &Session) -> dmf_linalg::Matrix {
    let n = session.len();
    dmf_linalg::Matrix::from_fn(n, n, |i, j| {
        if i == j {
            0.0
        } else {
            session.predict(i, j).expect("all slots alive")
        }
    })
}

/// True when the session is in quantity mode (sanity check helper).
pub fn is_quantity(session: &Session) -> bool {
    matches!(session.config().mode, PredictionMode::Quantity { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::rtt::meridian_like;

    #[test]
    fn train_and_evaluate_quickly() {
        let d = meridian_like(50, 1);
        let cm = d.classify(d.median());
        let system = train_class(&cm, default_config(10, 1), 50 * 10 * 20);
        let a = auc_of(&system, &cm);
        assert!(a > 0.85, "default training AUC {a}");
    }

    #[test]
    fn quantity_training_flagged() {
        let d = meridian_like(40, 2);
        let system = train_quantity(&d, 10, 2, 40 * 10 * 10);
        assert!(is_quantity(&system));
        let q = predicted_quantities(&system);
        assert_eq!(q.shape(), (40, 40));
    }

    #[test]
    fn trace_training_with_errors_reports_level() {
        let scale = Scale::quick();
        let trio = Trio::build(&scale, 5);
        let tau = trio.harvard.dataset.median();
        let (_, level) = train_trace_class(
            &trio.harvard_trace,
            tau,
            default_config(10, 5),
            &[ErrorModel::FlipRandom { fraction: 0.10 }],
            9,
        );
        assert!((level - 0.10).abs() < 0.02, "achieved error level {level}");
    }

    #[test]
    fn bundle_trainer_dispatches_both_protocols() {
        let scale = Scale::quick();
        let trio = Trio::build(&scale, 6);
        let trainer = BundleTrainer {
            trio: &trio,
            scale: &scale,
        };
        for bundle in trio.bundles() {
            let class = bundle.dataset.classify(bundle.dataset.median());
            let system = trainer.train(bundle, &class, default_config(bundle.k, 6), &[], 0);
            let a = auc_of(&system, &class);
            assert!(a > 0.8, "{}: AUC {a}", bundle.name);
        }
    }
}
