//! The three-dataset bundle every experiment runs on.

use crate::experiments::scale::Scale;
use dmf_datasets::abw::hps3_like;
use dmf_datasets::dynamic::{harvard_like, HarvardConfig};
use dmf_datasets::rtt::meridian_like;
use dmf_datasets::{Dataset, DynamicTrace};

/// One dataset plus its paper-default neighbor count.
pub struct DatasetBundle {
    /// Short name used in output rows ("Harvard", "Meridian", "HP-S3").
    pub name: &'static str,
    /// Ground-truth dataset.
    pub dataset: Dataset,
    /// Neighbor count `k` the paper uses for it.
    pub k: usize,
}

/// The Harvard / Meridian / HP-S3 trio.
pub struct Trio {
    /// Harvard: dynamic RTTs; this is the median ground truth.
    pub harvard: DatasetBundle,
    /// The timestamped Harvard measurement stream.
    pub harvard_trace: DynamicTrace,
    /// Meridian: static RTTs.
    pub meridian: DatasetBundle,
    /// HP-S3: ABW.
    pub hps3: DatasetBundle,
}

impl Trio {
    /// Builds all three datasets at the given scale.
    pub fn build(scale: &Scale, seed: u64) -> Self {
        let (harvard_trace, harvard_gt) = harvard_like(
            &HarvardConfig::new(scale.harvard_nodes, scale.harvard_measurements),
            seed,
        );
        Self {
            harvard: DatasetBundle {
                name: "Harvard",
                dataset: harvard_gt,
                k: scale.k_harvard,
            },
            harvard_trace,
            meridian: DatasetBundle {
                name: "Meridian",
                dataset: meridian_like(scale.meridian_nodes, seed + 1),
                k: scale.k_meridian,
            },
            hps3: DatasetBundle {
                name: "HP-S3",
                dataset: hps3_like(scale.hps3_nodes, seed + 2),
                k: scale.k_hps3,
            },
        }
    }

    /// The three bundles in paper order.
    pub fn bundles(&self) -> [&DatasetBundle; 3] {
        [&self.harvard, &self.meridian, &self.hps3]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmf_datasets::Metric;

    #[test]
    fn builds_calibrated_trio() {
        let trio = Trio::build(&Scale::quick(), 1);
        assert_eq!(trio.harvard.dataset.metric, Metric::Rtt);
        assert_eq!(trio.meridian.dataset.metric, Metric::Rtt);
        assert_eq!(trio.hps3.dataset.metric, Metric::Abw);
        assert!((trio.harvard.dataset.median() - 131.6).abs() < 1e-6);
        assert!((trio.meridian.dataset.median() - 56.4).abs() < 1e-6);
        assert!((trio.hps3.dataset.median() - 43.1).abs() < 1e-6);
        assert_eq!(trio.harvard_trace.nodes, Scale::quick().harvard_nodes);
    }
}
