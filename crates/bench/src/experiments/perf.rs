//! Tracked wall-clock performance suite (`perf_suite` binary).
//!
//! The DMFSGD paper sells the algorithm on scalability — O(r) work per
//! measurement, no infrastructure — and the related scalable-estimation
//! literature treats updates/second and end-to-end wall clock as
//! first-class results. This module measures both for the hot paths of
//! this reproduction and emits a schema-stable JSON record
//! (`BENCH.json`) so every PR leaves a comparable perf trajectory.
//!
//! The workloads are **fixed-work** (the amount of work depends only on
//! the [`Scale`] preset and hard-coded seeds, never on elapsed time),
//! so two runs of the same scale on the same machine are directly
//! comparable: the wall-clock ratio *is* the speedup.
//!
//! Metrics at a glance:
//!
//! | name | work unit | what it times |
//! |---|---|---|
//! | `sgd_updates` | updates | oracle-driven [`dmf_core::Session::run`] ticks |
//! | `meridian_simnet_run` | events (protocol legs, 3/probe) | message-driven [`SimnetRunner::run_for`] |
//! | `harvard_replay` | measurements | time-ordered trace replay |
//! | `score_eval` | entries | full-matrix `predicted_scores` |
//! | `scale_events_{n}` | events | sharded 10k/100k fused-RTT run ([`scale_sim`]) |
//! | `scale_sgd_{n}` | updates | SGD steps inside the same scale run |
//!
//! The scale runs additionally persist a structured [`ScaleRun`]
//! record (island layout, memory-per-node) in the report's
//! `scale_runs` field, the wire-protocol byte accounting (v1 vs
//! v2 `bytes_per_probe_cycle`; see [`wire`]) a [`WireRun`] pair in
//! `wire_runs`, and the prediction-service load generation (qps,
//! p50/p99 latency; see [`service`]) a [`ServiceRun`] per shard
//! count in `service_runs`.

use crate::experiments::scale::Scale;
use crate::experiments::scale_sim::{self, ScaleRun};
use crate::experiments::service::{self, ServiceRun};
use crate::experiments::training::default_config;
use crate::experiments::wire::{self, WireRun};
use dmf_core::provider::ClassLabelProvider;
use dmf_core::runner::SimnetRunner;
use dmf_core::SessionBuilder;
use dmf_datasets::dynamic::{harvard_like, HarvardConfig};
use dmf_datasets::rtt::meridian_like;
use dmf_simnet::NetConfig;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Bump when the JSON layout changes incompatibly (comparison scripts
/// key on this). v2: the `scale_runs` field (sharded 10k/100k
/// workload) became part of the record. v3: the `wire_runs` field
/// (v1-vs-v2 bytes-per-probe-cycle accounting) joined it. v4: the
/// `service_runs` field (sharded prediction-service load generation;
/// see [`service`]) joined it. v5: `service_runs` became a
/// mix-by-shard matrix (`read_pct` per run) with per-request-kind
/// latency lanes and write-path batching distributions.
pub const SCHEMA_VERSION: u32 = 5;

/// Simulated seconds the Meridian simnet workload runs for.
const MERIDIAN_SIM_DURATION_S: f64 = 600.0;

/// How many times the full score matrix is materialized for timing.
const SCORE_EVAL_REPEATS: usize = 100;

/// How many times the Harvard trace is replayed (training continues
/// across repeats; the work per repeat is identical).
const HARVARD_REPLAY_REPEATS: usize = 3;

/// Multiplier on the oracle-driven tick budget.
const SGD_TICKS_REPEATS: usize = 4;

/// Scale-run populations and simulated durations per preset. The
/// quick preset keeps only the 10k run (short, so the suite stays a
/// CI smoke); standard and paper add the 100k run the tentpole
/// targets. Work stays fixed per preset: population × simulated
/// seconds pins the event count up to RNG-driven probe jitter.
fn scale_populations(name: &str) -> &'static [(usize, f64)] {
    match name {
        "paper" => &[(10_000, 60.0), (100_000, 20.0)],
        "standard" => &[(10_000, 30.0), (100_000, 10.0)],
        _ => &[(10_000, 3.0)],
    }
}

/// One timed workload.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfMetric {
    /// Stable metric identifier (see the module table).
    pub name: String,
    /// Units of work processed (updates, events, measurements, entries).
    pub work: f64,
    /// What `work` counts.
    pub unit: String,
    /// Wall-clock seconds for the whole workload.
    pub elapsed_s: f64,
    /// `work / elapsed_s`.
    pub per_sec: f64,
}

/// The full suite result, as persisted to `BENCH.json`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PerfReport {
    /// JSON layout version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Scale preset name ("quick" / "standard" / "paper").
    pub scale: String,
    /// Free-form label (`--label`; e.g. "baseline", a commit id).
    pub label: String,
    /// All metrics, in fixed order.
    pub metrics: Vec<PerfMetric>,
    /// Structured records for the sharded scale runs (schema v2; the
    /// flat `scale_*` metrics are derived from these).
    pub scale_runs: Vec<ScaleRun>,
    /// Wire-protocol byte accounting, one record per protocol version
    /// (schema v3). `wire_runs[v1].bytes_per_probe_cycle /
    /// wire_runs[v2].bytes_per_probe_cycle` is the tracked
    /// compression ratio the CI gate pins at ≥ 3.
    pub wire_runs: Vec<WireRun>,
    /// Prediction-service load generation, one record per traffic mix
    /// × shard count (schema v5): qps, overall and per-request-kind
    /// p50/p99 latency through the full wire path, and write-path
    /// batching distributions. The CI gate pins a qps floor, a p99
    /// ceiling, and a shard-scaling ratio on these.
    pub service_runs: Vec<ServiceRun>,
}

impl PerfReport {
    /// Looks up a metric by name.
    pub fn metric(&self, name: &str) -> Option<&PerfMetric> {
        self.metrics.iter().find(|m| m.name == name)
    }

    /// Wall-clock speedup of `self` over `baseline` for one metric
    /// (`baseline.elapsed_s / self.elapsed_s`); `None` when either
    /// side lacks the metric.
    pub fn speedup_over(&self, baseline: &PerfReport, name: &str) -> Option<f64> {
        let ours = self.metric(name)?;
        let theirs = baseline.metric(name)?;
        Some(theirs.elapsed_s / ours.elapsed_s)
    }
}

fn timed(name: &str, unit: &str, work: f64, f: impl FnOnce()) -> PerfMetric {
    let start = Instant::now();
    f();
    let elapsed_s = start.elapsed().as_secs_f64();
    PerfMetric {
        name: name.to_string(),
        work,
        unit: unit.to_string(),
        elapsed_s,
        per_sec: work / elapsed_s.max(1e-12),
    }
}

/// Scale preset name for the report.
pub fn scale_name(scale: &Scale) -> &'static str {
    if scale.meridian_nodes == Scale::paper().meridian_nodes {
        "paper"
    } else if scale.meridian_nodes == Scale::standard().meridian_nodes {
        "standard"
    } else {
        "quick"
    }
}

/// Runs the whole suite at `scale`.
pub fn run(scale: &Scale, label: &str) -> PerfReport {
    let mut metrics = Vec::new();

    // -- sgd_updates: oracle-driven training ticks --------------------
    {
        let d = meridian_like(scale.meridian_nodes, 1);
        let class = d.classify(d.median());
        let ticks = scale.ticks(scale.meridian_nodes, scale.k_meridian) * SGD_TICKS_REPEATS;
        let mut provider = ClassLabelProvider::new(class);
        let mut session = SessionBuilder::from_config(default_config(scale.k_meridian, 1))
            .nodes(scale.meridian_nodes)
            .build()
            .expect("experiment config is valid");
        metrics.push(timed("sgd_updates", "updates", ticks as f64, || {
            session
                .run(ticks, &mut provider)
                .expect("provider covers the session");
        }));
    }

    // -- meridian_simnet_run: the message-driven deployment -----------
    let runner = {
        let d = meridian_like(scale.meridian_nodes, 2);
        let tau = d.median();
        let mut runner = SimnetRunner::new(
            d,
            tau,
            default_config(scale.k_meridian, 2),
            NetConfig::default(),
        )
        .expect("experiment config is valid");
        let mut events = 0.0;
        metrics.push(timed("meridian_simnet_run", "events", 0.0, || {
            runner
                .run_for(MERIDIAN_SIM_DURATION_S)
                .expect("positive duration");
            let s = runner.stats();
            // Work unit: *logical protocol legs* — probe, reply and
            // measurement per cycle — a mode-independent normalization.
            // (How many queue deliveries execute a cycle depends on
            // the ExchangeFidelity; elapsed_s is the tracked number.)
            events = (s.probes_sent * 3) as f64;
        }));
        let m = metrics.last_mut().expect("metric just pushed");
        m.work = events;
        m.per_sec = events / m.elapsed_s.max(1e-12);
        runner
    };

    // -- harvard_replay: time-ordered dynamic trace -------------------
    {
        let (trace, gt) = harvard_like(
            &HarvardConfig::new(scale.harvard_nodes, scale.harvard_measurements),
            3,
        );
        let tau = gt.median();
        let mut session = SessionBuilder::from_config(default_config(scale.k_harvard, 3))
            .nodes(scale.harvard_nodes)
            .build()
            .expect("experiment config is valid");
        metrics.push(timed(
            "harvard_replay",
            "measurements",
            (trace.len() * HARVARD_REPLAY_REPEATS) as f64,
            || {
                for _ in 0..HARVARD_REPLAY_REPEATS {
                    session
                        .run_trace(&trace, tau)
                        .expect("trace matches the session");
                }
            },
        ));
    }

    // -- score_eval: full-matrix U·Vᵀ materialization ------------------
    {
        let n = scale.meridian_nodes;
        let entries = (n * n * SCORE_EVAL_REPEATS) as f64;
        let mut scores = dmf_linalg::Matrix::zeros(0, 0);
        metrics.push(timed("score_eval", "entries", entries, || {
            for _ in 0..SCORE_EVAL_REPEATS {
                runner.predicted_scores_into(&mut scores);
                std::hint::black_box(&scores);
            }
        }));
    }

    // -- scale: sharded fused-RTT simulation at 10k/100k nodes --------
    let mut scale_runs = Vec::new();
    for &(n, sim_seconds) in scale_populations(scale_name(scale)) {
        let run = scale_sim::run_one(n, sim_seconds, 7);
        let tag = scale_sim::population_label(n);
        metrics.push(PerfMetric {
            name: format!("scale_events_{tag}"),
            work: run.events as f64,
            unit: "events".to_string(),
            elapsed_s: run.elapsed_s,
            per_sec: run.events_per_sec,
        });
        metrics.push(PerfMetric {
            name: format!("scale_sgd_{tag}"),
            work: run.sgd_updates as f64,
            unit: "updates".to_string(),
            elapsed_s: run.elapsed_s,
            per_sec: run.updates_per_sec,
        });
        scale_runs.push(run);
    }

    // -- wire: v1-vs-v2 bytes-per-probe-cycle accounting --------------
    let wire_runs = wire::run(scale, scale_name(scale));

    // -- service: sharded prediction-service load generation ----------
    let service_runs = service::run(scale_name(scale));

    PerfReport {
        schema_version: SCHEMA_VERSION,
        scale: scale_name(scale).to_string(),
        label: label.to_string(),
        metrics,
        scale_runs,
        wire_runs,
        service_runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_suite_emits_all_metrics() {
        let report = run(&Scale::quick(), "test");
        assert_eq!(report.schema_version, SCHEMA_VERSION);
        assert_eq!(report.scale, "quick");
        let names: Vec<&str> = report.metrics.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "sgd_updates",
                "meridian_simnet_run",
                "harvard_replay",
                "score_eval",
                "scale_events_10k",
                "scale_sgd_10k"
            ]
        );
        for m in &report.metrics {
            assert!(m.work > 0.0, "{}: no work recorded", m.name);
            assert!(
                m.elapsed_s > 0.0 && m.per_sec > 0.0,
                "{}: no timing",
                m.name
            );
        }
        // The structured scale record mirrors the flat metrics and
        // carries the memory-per-node accounting.
        assert_eq!(report.scale_runs.len(), 1);
        let r = &report.scale_runs[0];
        assert_eq!(r.n, 10_000);
        assert_eq!(r.islands, 40);
        assert_eq!(
            report.metric("scale_events_10k").unwrap().work,
            r.events as f64
        );
        assert_eq!(
            report.metric("scale_sgd_10k").unwrap().work,
            r.sgd_updates as f64
        );
        // Island tables: 40 islands of 250 → 1 KB/node, not the 40 KB
        // a dense 10k×10k table would cost.
        assert_eq!(r.table_bytes, 40 * 250 * 250 * 4);
        assert!(r.bytes_per_node < 1_024.0);
        // The wire pair rides every report, and the ratio the CI gate
        // checks must clear its floor already at quick scale.
        assert_eq!(report.wire_runs.len(), 2);
        assert_eq!(report.wire_runs[0].version, "v1");
        assert_eq!(report.wire_runs[1].version, "v2");
        let ratio = wire::compression_ratio(&report.wire_runs).expect("pair present");
        assert!(ratio >= 3.0, "wire compression ratio {ratio:.2}");
        // And so do the service load runs, the full mix × shard
        // matrix for the quick preset.
        assert_eq!(
            report.service_runs.len(),
            service::MIXES.len() * service::QUICK_SHARD_COUNTS.len()
        );
        for run in &report.service_runs {
            assert!(service::QUICK_SHARD_COUNTS.contains(&run.shards));
            assert!(service::MIXES.contains(&run.read_pct));
            assert!(run.qps > 0.0 && run.p99_us >= run.p50_us);
            assert_eq!(run.batching.updates as usize, run.update.requests);
            assert_eq!(run.overload_rejections, 0);
        }
    }

    /// Schema breaks are deliberate and loud: reports from before the
    /// scale workload (v1, no `scale_runs`), before the wire
    /// accounting (v2, no `wire_runs`), or before the service load
    /// generation (v3, no `service_runs`) must fail at parse time
    /// rather than silently comparing against a truncated record —
    /// `perf_suite --compare` additionally checks `schema_version`.
    #[test]
    fn pre_scale_reports_are_rejected() {
        let v1 = r#"{"schema_version":1,"scale":"quick","label":"old",
            "metrics":[{"name":"sgd_updates","work":1.0,"unit":"updates",
            "elapsed_s":1.0,"per_sec":1.0}]}"#;
        let err = serde_json::from_str::<PerfReport>(v1).unwrap_err();
        assert!(err.to_string().contains("scale_runs"), "{err}");

        let v2 = r#"{"schema_version":2,"scale":"quick","label":"old",
            "metrics":[],"scale_runs":[]}"#;
        let err = serde_json::from_str::<PerfReport>(v2).unwrap_err();
        assert!(err.to_string().contains("wire_runs"), "{err}");

        let v3 = r#"{"schema_version":3,"scale":"quick","label":"old",
            "metrics":[],"scale_runs":[],"wire_runs":[]}"#;
        let err = serde_json::from_str::<PerfReport>(v3).unwrap_err();
        assert!(err.to_string().contains("service_runs"), "{err}");
    }

    #[test]
    fn speedup_is_elapsed_ratio() {
        let mut a = run(&Scale::quick(), "a");
        let mut b = a.clone();
        a.metrics[0].elapsed_s = 2.0;
        b.metrics[0].elapsed_s = 1.0;
        let name = a.metrics[0].name.clone();
        assert_eq!(b.speedup_over(&a, &name), Some(2.0));
        assert_eq!(b.speedup_over(&a, "no_such_metric"), None);
    }
}
