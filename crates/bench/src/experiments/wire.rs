//! Tracked wire-cost experiment: bytes per probe cycle, v1 vs v2.
//!
//! The delta protocol (`dmf_proto` v2) exists to shrink the per-probe
//! byte footprint: instead of shipping full f64 coordinate vectors
//! every message, nodes send f16 keyframes and quantized i8 deltas
//! against the receiver's last-acknowledged state. This module runs
//! the same Meridian workload through [`SimnetRunner`] in wire mode
//! once per protocol version and records a [`WireRun`] pair in
//! `BENCH.json` (schema v3, the `wire_runs` field), so the headline
//! `bytes_per_probe_cycle` number — and the v1/v2 compression ratio —
//! is tracked across PRs like every other perf metric.
//!
//! The workload is fixed-work per [`Scale`] preset (population ×
//! simulated seconds, hard-coded seeds), and both versions face the
//! byte-identical simulated network, so the ratio is a pure protocol
//! property rather than an artifact of probe scheduling.

use crate::experiments::scale::Scale;
use crate::experiments::training::default_config;
use dmf_core::runner::SimnetRunner;
use dmf_datasets::rtt::meridian_like;
use dmf_eval::{collect_scores, roc::auc};
use dmf_proto::WireVersion;
use dmf_simnet::NetConfig;
use serde::{Deserialize, Serialize};

/// Dataset / config seed shared by both versions, so the only
/// difference between the two runs is the bytes on the wire.
const WIRE_SEED: u64 = 41;

/// Population and simulated duration per preset. Quick stays small
/// enough for the CI smoke; paper uses the Harvard-sized population.
fn wire_workload(scale_name: &str) -> (usize, f64) {
    match scale_name {
        "paper" => (226, 600.0),
        "standard" => (120, 300.0),
        _ => (40, 150.0),
    }
}

/// One wire-mode run: byte accounting for a single protocol version.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WireRun {
    /// Protocol version label ("v1" / "v2").
    pub version: String,
    /// Population of the Meridian-like dataset.
    pub nodes: usize,
    /// Simulated seconds the cluster ran for.
    pub sim_seconds: f64,
    /// Completed probe cycles (measurement round-trips).
    pub probe_cycles: usize,
    /// Datagrams sent across all nodes.
    pub messages_sent: u64,
    /// Total wire bytes sent across all nodes.
    pub bytes_sent: u64,
    /// The headline metric: `bytes_sent / probe_cycles`.
    pub bytes_per_probe_cycle: f64,
    /// Keyframes the encoders emitted (v2 only; 0 on v1).
    pub keyframes_sent: u64,
    /// Sequence gaps the decoders observed (v2 only; 0 on v1).
    pub gaps_detected: u64,
    /// Final ranking quality, guarding against a protocol that is
    /// cheap because it stopped carrying information.
    pub final_auc: f64,
}

/// Runs one protocol version over the preset workload.
fn run_one(version: WireVersion, n: usize, k: usize, sim_seconds: f64) -> WireRun {
    let d = meridian_like(n, WIRE_SEED);
    let tau = d.median();
    let cm = d.classify(tau);
    let mut runner = SimnetRunner::new(d, tau, default_config(k, WIRE_SEED), NetConfig::default())
        .expect("experiment config is valid")
        .with_wire_version(version);
    runner.run_for(sim_seconds).expect("positive duration");
    let cycles = runner.stats().measurements_completed;
    let ws = runner.wire_stats();
    WireRun {
        version: version.to_string(),
        nodes: n,
        sim_seconds,
        probe_cycles: cycles,
        messages_sent: ws.messages_sent,
        bytes_sent: ws.bytes_sent,
        bytes_per_probe_cycle: ws.bytes_sent as f64 / (cycles as f64).max(1.0),
        keyframes_sent: ws.keyframes_sent,
        gaps_detected: ws.gaps_detected,
        final_auc: auc(&collect_scores(&cm, &runner.predicted_scores())),
    }
}

/// Runs both protocol versions at `scale` (v1 first, then v2).
pub fn run(scale: &Scale, scale_name: &str) -> Vec<WireRun> {
    let (n, sim_seconds) = wire_workload(scale_name);
    let k = scale.k_meridian.min(n / 2);
    [WireVersion::V1, WireVersion::V2]
        .into_iter()
        .map(|v| run_one(v, n, k, sim_seconds))
        .collect()
}

/// v1-over-v2 bytes-per-probe-cycle ratio; `None` when either run is
/// missing. This is the number the CI perf gate pins at ≥ 3.
pub fn compression_ratio(runs: &[WireRun]) -> Option<f64> {
    let v1 = runs.iter().find(|r| r.version == "v1")?;
    let v2 = runs.iter().find(|r| r.version == "v2")?;
    Some(v1.bytes_per_probe_cycle / v2.bytes_per_probe_cycle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v2_is_at_least_three_times_cheaper_and_still_learns() {
        let runs = run(&Scale::quick(), "quick");
        assert_eq!(runs.len(), 2);
        let ratio = compression_ratio(&runs).expect("both versions present");
        assert!(
            ratio >= 3.0,
            "v1/v2 bytes-per-cycle ratio {ratio:.2} below the 3x floor"
        );
        for r in &runs {
            assert!(r.probe_cycles > 0, "{}: no cycles completed", r.version);
            assert!(r.bytes_sent > 0, "{}: no bytes accounted", r.version);
            assert!(
                r.final_auc > 0.7,
                "{}: AUC {} too low",
                r.version,
                r.final_auc
            );
        }
        let v2 = &runs[1];
        assert_eq!(v2.version, "v2");
        assert!(v2.keyframes_sent > 0, "v2 must emit keyframes");
        assert_eq!(runs[0].keyframes_sent, 0, "v1 has no keyframe machinery");
    }

    #[test]
    fn ratio_requires_both_versions() {
        let runs = run(&Scale::quick(), "quick");
        assert!(compression_ratio(&runs[..1]).is_none());
        assert!(compression_ratio(&runs[1..]).is_none());
    }
}
