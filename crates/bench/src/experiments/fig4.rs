//! Figure 4 — AUC under different rank `r`, neighbor count `k`, and
//! classification threshold `τ`.
//!
//! * (a) r ∈ {3, 10, 20, 100} at default k;
//! * (b) k ∈ {5, 10, 30, 50} (Harvard, HP-S3) / {16, 32, 64, 128}
//!   (Meridian) at r = 10;
//! * (c) τ at good-portions {10, 25, 50, 75, 90} % at defaults.
//!
//! Expected shape: a small (r, k) pair already suffices; increasing k
//! helps monotonically-ish; extreme portions are easier than the
//! balanced 50 % point or comparable (AUC stays high across the
//! sweep).

use crate::experiments::scale::Scale;
use crate::experiments::training::{auc_of, default_config, BundleTrainer};
use crate::experiments::trio::{DatasetBundle, Trio};
use serde::{Deserialize, Serialize};

/// The rank sweep of Figure 4a.
pub const RANKS: [usize; 4] = [3, 10, 20, 100];
/// The portion sweep of Figure 4c.
pub const PORTIONS: [f64; 5] = [0.10, 0.25, 0.50, 0.75, 0.90];

/// One measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4Cell {
    /// Dataset name.
    pub dataset: String,
    /// Which sub-figure: "r", "k" or "tau".
    pub sweep: String,
    /// Swept value (rank, k, or good-portion).
    pub value: f64,
    /// Resulting AUC.
    pub auc: f64,
}

/// The full figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig4 {
    /// All cells.
    pub cells: Vec<Fig4Cell>,
}

/// The paper's k grid for a dataset (Meridian gets the larger one).
pub fn k_grid(bundle: &DatasetBundle) -> Vec<usize> {
    if bundle.name == "Meridian" {
        vec![16, 32, 64, 128]
    } else {
        vec![5, 10, 30, 50]
    }
}

/// Runs one or more sweeps; `which` ⊆ {"r", "k", "tau"}.
pub fn run(scale: &Scale, seed: u64, which: &[&str]) -> Fig4 {
    let trio = Trio::build(scale, seed);
    let trainer = BundleTrainer { trio: &trio, scale };
    let mut cells = Vec::new();
    for bundle in trio.bundles() {
        let n = bundle.dataset.len();
        let tau_med = bundle.dataset.median();
        let class_med = bundle.dataset.classify(tau_med);

        if which.contains(&"r") {
            for &r in &RANKS {
                let mut cfg = default_config(bundle.k, seed ^ 0x000f_194a);
                cfg.rank = r;
                let system = trainer.train(bundle, &class_med, cfg, &[], 0);
                cells.push(Fig4Cell {
                    dataset: bundle.name.into(),
                    sweep: "r".into(),
                    value: r as f64,
                    auc: auc_of(&system, &class_med),
                });
            }
        }

        if which.contains(&"k") {
            for k in k_grid(bundle) {
                if k >= n {
                    continue; // quick-scale instances may be too small
                }
                let cfg = default_config(k, seed ^ 0x000f_194b);
                let system = trainer.train(bundle, &class_med, cfg, &[], 0);
                cells.push(Fig4Cell {
                    dataset: bundle.name.into(),
                    sweep: "k".into(),
                    value: k as f64,
                    auc: auc_of(&system, &class_med),
                });
            }
        }

        if which.contains(&"tau") {
            for &portion in &PORTIONS {
                let tau = bundle.dataset.tau_for_good_portion(portion);
                let class = bundle.dataset.classify(tau);
                let cfg = default_config(bundle.k, seed ^ 0x000f_194c);
                let system = trainer.train(bundle, &class, cfg, &[], 0);
                cells.push(Fig4Cell {
                    dataset: bundle.name.into(),
                    sweep: "tau".into(),
                    value: portion,
                    auc: auc_of(&system, &class),
                });
            }
        }
    }
    Fig4 { cells }
}

impl Fig4 {
    /// Cells of one sweep for one dataset, ordered by value.
    pub fn series(&self, dataset: &str, sweep: &str) -> Vec<(f64, f64)> {
        let mut v: Vec<(f64, f64)> = self
            .cells
            .iter()
            .filter(|c| c.dataset == dataset && c.sweep == sweep)
            .map(|c| (c.value, c.auc))
            .collect();
        v.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN"));
        v
    }

    /// Figure 4a claim: r = 10 is within a small margin of the best
    /// rank — bigger ranks are "either costly or worthless".
    pub fn small_rank_suffices(&self, dataset: &str) -> bool {
        let series = self.series(dataset, "r");
        let Some(&(_, auc_r10)) = series.iter().find(|&&(r, _)| r == 10.0) else {
            return false;
        };
        let best = series.iter().map(|&(_, a)| a).fold(0.0f64, f64::max);
        auc_r10 > best - 0.05
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_sweep_shape() {
        let fig = run(&Scale::quick(), 11, &["r"]);
        for d in ["Harvard", "Meridian", "HP-S3"] {
            let series = fig.series(d, "r");
            assert_eq!(series.len(), 4, "{d} rank series");
            assert!(
                fig.small_rank_suffices(d),
                "{d}: r=10 should be near-optimal"
            );
        }
    }

    #[test]
    fn tau_sweep_covers_portions() {
        let fig = run(&Scale::quick(), 12, &["tau"]);
        for d in ["Harvard", "Meridian", "HP-S3"] {
            let series = fig.series(d, "tau");
            assert_eq!(series.len(), 5);
            // All portions should stay usable (AUC > 0.7 at quick scale).
            for (portion, auc) in series {
                assert!(auc > 0.7, "{d} portion {portion}: AUC {auc}");
            }
        }
    }
}
