//! Figure 1 — normalized singular values of an RTT and an ABW matrix
//! and of their binary class matrices.
//!
//! Paper setup: a 2255×2255 RTT matrix from Meridian, a 201×201 ABW
//! matrix from HP-S3, class matrices thresholded at the median, top-20
//! spectra normalized to σ₁ = 1. Expected shape: all four curves decay
//! fast (low effective rank), with class matrices decaying at least as
//! fast as their quantity counterparts.

use crate::experiments::scale::Scale;
use crate::experiments::trio::Trio;
use dmf_linalg::decomp::normalized_spectrum;
use dmf_linalg::svd::randomized_top_k;
use dmf_linalg::Matrix;
use serde::{Deserialize, Serialize};

/// One spectrum (normalized, descending).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Spectrum {
    /// Curve label as in the paper legend.
    pub label: String,
    /// Matrix side length used.
    pub n: usize,
    /// Normalized singular values (σ/σ₁), top-k.
    pub values: Vec<f64>,
}

/// The four curves of Figure 1.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig1 {
    /// `RTT`, `RTT class`, `ABW`, `ABW class` in paper order.
    pub spectra: Vec<Spectrum>,
}

fn top_spectrum(label: &str, m: &Matrix, k: usize, seed: u64) -> Spectrum {
    let svd = randomized_top_k(m, k, 8, 3, seed);
    Spectrum {
        label: label.to_string(),
        n: m.rows(),
        values: normalized_spectrum(&svd.singular_values),
    }
}

/// Runs the experiment.
pub fn run(scale: &Scale, seed: u64) -> Fig1 {
    let trio = Trio::build(scale, seed);
    let top_k = 20;

    // Cut the paper's submatrix sizes where the dataset allows.
    let rtt = trio
        .meridian
        .dataset
        .head(trio.meridian.dataset.len().min(2255));
    let abw = trio.hps3.dataset.head(trio.hps3.dataset.len().min(201));

    let rtt_class = rtt.classify(rtt.median());
    let abw_class = abw.classify(abw.median());

    // Unobserved entries enter as zeros, as in the raw matrices the
    // paper decomposes.
    let rtt_m = rtt.mask.apply(&rtt.values, 0.0);
    let abw_m = abw.mask.apply(&abw.values, 0.0);

    Fig1 {
        spectra: vec![
            top_spectrum("RTT", &rtt_m, top_k, seed ^ 1),
            top_spectrum("RTT class", &rtt_class.labels, top_k, seed ^ 2),
            top_spectrum("ABW", &abw_m, top_k, seed ^ 3),
            top_spectrum("ABW class", &abw_class.labels, top_k, seed ^ 4),
        ],
    }
}

impl Fig1 {
    /// The paper's qualitative claim: fast decay. We check that by
    /// the 10th singular value every curve has fallen below 35 % of σ₁.
    pub fn decays_fast(&self) -> bool {
        self.spectra
            .iter()
            .all(|s| s.values.get(9).map(|&v| v < 0.35).unwrap_or(false))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_shape_holds_at_quick_scale() {
        let fig = run(&Scale::quick(), 42);
        assert_eq!(fig.spectra.len(), 4);
        for s in &fig.spectra {
            assert_eq!(s.values.len(), 20);
            assert!(
                (s.values[0] - 1.0).abs() < 1e-9,
                "{}: σ1 must normalize to 1",
                s.label
            );
            for w in s.values.windows(2) {
                assert!(
                    w[0] >= w[1] - 1e-9,
                    "{}: spectrum must be descending",
                    s.label
                );
            }
        }
        assert!(fig.decays_fast(), "all four spectra must decay fast");
    }
}
