//! Table 2 — accuracy and confusion matrices under the default
//! configuration.
//!
//! The paper reports ≈ 89.4 % (Harvard), 85.4 % (Meridian) and 87.3 %
//! (HP-S3) accuracy with good/bad recalls in the 81–94 % range. The
//! shape to reproduce: accuracies well above 80 %, with "good" recall
//! a few points above "bad" recall on every dataset.

use crate::experiments::scale::Scale;
use crate::experiments::training::{default_config, BundleTrainer};
use crate::experiments::trio::Trio;
use dmf_eval::{collect_scores, ConfusionMatrix};
use serde::{Deserialize, Serialize};

/// One dataset's row of Table 2.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2Row {
    /// Dataset name.
    pub dataset: String,
    /// Overall accuracy.
    pub accuracy: f64,
    /// `[[P(G|G), P(B|G)], [P(G|B), P(B|B)]]` in percent.
    pub confusion_percent: [[f64; 2]; 2],
}

/// The full table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Table2 {
    /// Harvard, Meridian, HP-S3.
    pub rows: Vec<Table2Row>,
}

/// Runs the experiment.
pub fn run(scale: &Scale, seed: u64) -> Table2 {
    let trio = Trio::build(scale, seed);
    let trainer = BundleTrainer { trio: &trio, scale };
    let rows = trio
        .bundles()
        .iter()
        .map(|bundle| {
            let tau = bundle.dataset.median();
            let class = bundle.dataset.classify(tau);
            let system = trainer.train(
                bundle,
                &class,
                default_config(bundle.k, seed ^ 0x7ab1e2),
                &[],
                0,
            );
            let samples = collect_scores(&class, &system.predicted_scores());
            let cm = ConfusionMatrix::at_sign(&samples);
            Table2Row {
                dataset: bundle.name.to_string(),
                accuracy: cm.accuracy(),
                confusion_percent: cm.as_percentages(),
            }
        })
        .collect();
    Table2 { rows }
}

impl Table2 {
    /// The paper's qualitative claims.
    pub fn shape_holds(&self) -> bool {
        self.rows.iter().all(|r| {
            let diag_dominant = r.confusion_percent[0][0] > r.confusion_percent[0][1]
                && r.confusion_percent[1][1] > r.confusion_percent[1][0];
            r.accuracy > 0.8 && diag_dominant
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_quick_scale() {
        let t = run(&Scale::quick(), 31);
        assert_eq!(t.rows.len(), 3);
        assert!(t.shape_holds(), "table 2 shape violated: {:?}", t.rows);
    }
}
