//! Large-population scale workload: fused RTT over sharded islands.
//!
//! The paper's pitch is that matrix-factorization coordinates cost
//! O(r) per measurement regardless of the population, so the system
//! should scale to "the large-n regime" without any per-node blow-up.
//! This module stress-tests that claim end to end at 10k and 100k
//! simulated nodes — two orders of magnitude past the Meridian
//! workload — through the exact production path:
//! [`ShardedSimNet`] (per-island delay tables, deterministic
//! event-order merge) driven by [`ShardedSimnetDriver`] (the fused
//! RTT protocol, byte-identical to the single-queue driver).
//!
//! Three numbers are tracked per population in `BENCH.json`:
//!
//! * **events/s** — delivered simulation events per wall-clock second
//!   (queue merge + protocol handling + SGD, the whole loop);
//! * **SGD updates/s** — completed measurements per wall-clock second
//!   (each one is a rank-r gradient step at the prober);
//! * **bytes/node** — delay-table memory per node. Dense tables are
//!   `4n` bytes per node (40 GB total at n=100k); island sharding
//!   holds this at `4·⌈n/islands⌉` ≈ 1 KB, which is what makes the
//!   100k run possible at all.
//!
//! The delay model is synthetic-geometric: nodes sit on a
//! `⌈√n⌉`-wide grid and one-way delay grows with Euclidean distance,
//! so RTTs straddle τ and both classes stay populated. No dense
//! ground-truth matrix is ever materialized — the fused protocol
//! measures the simulated network itself.

use crate::experiments::training::default_config;
use dmf_core::{SessionBuilder, ShardedSimnetDriver};
use dmf_simnet::{NetConfig, ShardedSimNet};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Target island size: `4·256² = 256 KB` per delay table, L2-resident
/// on anything modern.
pub const TARGET_ISLAND_SIZE: usize = 256;

/// Classification threshold (ms) for the synthetic-geometric RTT
/// distribution — chosen so both classes stay populated.
pub const SCALE_TAU_MS: f64 = 25.0;

/// One timed scale run, persisted inside `BENCH.json` next to the
/// flat metric list.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScaleRun {
    /// Population.
    pub n: usize,
    /// Island count (`⌈n / 256⌉`).
    pub islands: usize,
    /// Simulated seconds driven.
    pub sim_seconds: f64,
    /// Delivered simulation events (probe ticks + exchange
    /// completions + timer re-arms).
    pub events: u64,
    /// Completed measurements (one rank-r SGD step each).
    pub sgd_updates: u64,
    /// Wall-clock seconds for the drive loop (setup excluded).
    pub elapsed_s: f64,
    /// `events / elapsed_s`.
    pub events_per_sec: f64,
    /// `sgd_updates / elapsed_s`.
    pub updates_per_sec: f64,
    /// Total delay-table bytes across all islands.
    pub table_bytes: usize,
    /// `table_bytes / n` — the memory-per-node headline (dense would
    /// be `4n` per node).
    pub bytes_per_node: f64,
}

/// Synthetic-geometric one-way delay: grid position from the node id,
/// `5 ms + 50 µs · distance`. Deterministic, no RNG, so the same
/// (n, seed) run is exactly reproducible.
fn geometric_delay(n: usize) -> impl Fn(usize, usize) -> f64 {
    let side = (n as f64).sqrt().ceil().max(1.0) as usize;
    move |i, j| {
        let (xi, yi) = (i % side, i / side);
        let (xj, yj) = (j % side, j / side);
        let dx = xi.abs_diff(xj) as f64;
        let dy = yi.abs_diff(yj) as f64;
        0.005 + 0.000_05 * (dx * dx + dy * dy).sqrt()
    }
}

/// Builds the `n`-node sharded scenario and drives it for
/// `sim_seconds` of simulated time, returning the tracked rates.
pub fn run_one(n: usize, sim_seconds: f64, seed: u64) -> ScaleRun {
    let islands = n.div_ceil(TARGET_ISLAND_SIZE);
    let mut session = SessionBuilder::from_config(default_config(10, seed))
        .nodes(n)
        .tau(SCALE_TAU_MS)
        .build()
        .expect("scale config is valid");
    let net_cfg = NetConfig {
        seed,
        ..NetConfig::default()
    };
    let net = ShardedSimNet::from_delay_fn(n, islands, net_cfg, geometric_delay(n));
    let islands = net.islands();
    let table_bytes = net.table_bytes();
    let mut driver = ShardedSimnetDriver::new(&session, net).expect("population matches");

    let start = Instant::now();
    driver
        .run_until(&mut session, sim_seconds)
        .expect("scale run completes");
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-12);

    let net_stats = driver.net().stats();
    let events = (net_stats.delivered + net_stats.timers) as u64;
    let sgd_updates = driver.stats().measurements_completed as u64;
    ScaleRun {
        n,
        islands,
        sim_seconds,
        events,
        sgd_updates,
        elapsed_s,
        events_per_sec: events as f64 / elapsed_s,
        updates_per_sec: sgd_updates as f64 / elapsed_s,
        table_bytes,
        bytes_per_node: table_bytes as f64 / n as f64,
    }
}

/// Short label for metric names (`10000 → "10k"`).
pub fn population_label(n: usize) -> String {
    if n >= 1000 && n.is_multiple_of(1000) {
        format!("{}k", n / 1000)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_run_trains_and_accounts_memory() {
        // Small population, same code path: 1024 nodes, 4 islands.
        let run = run_one(1024, 3.0, 11);
        assert_eq!(run.n, 1024);
        assert_eq!(run.islands, 4);
        assert!(run.events > 0 && run.sgd_updates > 0);
        assert!(run.events >= run.sgd_updates);
        assert!(run.events_per_sec > 0.0 && run.updates_per_sec > 0.0);
        // 4 islands of 256 → 4·256² f32 entries, 1 KB per node —
        // dense would be 4·1024 = 4 KB per node.
        assert_eq!(run.table_bytes, 4 * 256 * 256 * 4);
        assert!((run.bytes_per_node - 1024.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_delays_are_positive_symmetric_and_graded() {
        let d = geometric_delay(10_000);
        assert!(d(0, 0) >= 0.005);
        assert_eq!(d(17, 4242).to_bits(), d(4242, 17).to_bits());
        // Distance-graded: a far pair beats a near pair.
        assert!(d(0, 9_999) > d(0, 1));
    }

    #[test]
    fn population_labels_abbreviate_thousands() {
        assert_eq!(population_label(10_000), "10k");
        assert_eq!(population_label(100_000), "100k");
        assert_eq!(population_label(1024), "1024");
    }
}
