//! Micro-benchmark: the simnet message loop (`SimnetRunner::run_for`)
//! at quick scale — the end-to-end event-queue + protocol + SGD hot
//! path that `perf_suite` times at population scale, and the one hot
//! path the other benches don't cover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dmf_core::runner::{ExchangeFidelity, SimnetRunner};
use dmf_core::DmfsgdConfig;
use dmf_datasets::rtt::meridian_like;
use dmf_simnet::NetConfig;

fn bench_simnet_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("simnet_run");
    group.sample_size(10);
    let n = 80;
    let duration_s = 30.0;
    // ~1 probe cycle per node-second.
    group.throughput(Throughput::Elements((n as f64 * duration_s) as u64));
    for fidelity in [ExchangeFidelity::Fused, ExchangeFidelity::PerMessage] {
        let d = meridian_like(n, 1);
        let tau = d.median();
        group.bench_with_input(
            BenchmarkId::new("meridian_quick", format!("{fidelity:?}")),
            &fidelity,
            |b, &fidelity| {
                b.iter(|| {
                    let mut runner = SimnetRunner::new(
                        d.clone(),
                        tau,
                        DmfsgdConfig::paper_defaults(),
                        NetConfig::default(),
                    )
                    .expect("valid config")
                    .with_exchange_fidelity(fidelity);
                    runner.run_for(duration_s).expect("positive duration");
                    runner.stats().measurements_completed
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simnet_run);
criterion_main!(benches);
