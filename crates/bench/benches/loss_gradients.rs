//! Micro-benchmark: loss value/gradient evaluation for the three loss
//! functions of §4.1.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmf_core::Loss;
use std::hint::black_box;

fn bench_losses(c: &mut Criterion) {
    let mut group = c.benchmark_group("loss");
    let inputs: Vec<(f64, f64)> = (0..64)
        .map(|i| {
            let x = if i % 2 == 0 { 1.0 } else { -1.0 };
            let xhat = (i as f64 - 32.0) / 8.0;
            (x, xhat)
        })
        .collect();
    for loss in [Loss::L2, Loss::Hinge, Loss::Logistic] {
        group.bench_with_input(
            BenchmarkId::new("gradient_factor", format!("{loss:?}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &(x, xhat) in &inputs {
                        acc += loss.gradient_factor(black_box(x), black_box(xhat));
                    }
                    acc
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("value", format!("{loss:?}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    let mut acc = 0.0;
                    for &(x, xhat) in &inputs {
                        acc += loss.value(black_box(x), black_box(xhat));
                    }
                    acc
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_losses);
criterion_main!(benches);
