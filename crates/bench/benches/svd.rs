//! Micro-benchmark: SVD cost — exact Jacobi vs randomized top-k
//! (the Figure 1 workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmf_linalg::svd::{jacobi_svd, randomized_top_k};
use dmf_linalg::Matrix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;

fn low_rank_plus_noise(n: usize, rank: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let base = dmf_linalg::svd::random_low_rank(n, n, rank, &mut rng);
    base.map_indexed(|_, _, v| v + 0.01 * dmf_linalg::stats::normal_sample(&mut rng, 0.0, 1.0))
}

fn bench_jacobi(c: &mut Criterion) {
    let mut group = c.benchmark_group("jacobi_svd");
    group.sample_size(10);
    for n in [30usize, 60, 120] {
        let m = low_rank_plus_noise(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| jacobi_svd(black_box(&m)));
        });
    }
    group.finish();
}

fn bench_randomized(c: &mut Criterion) {
    let mut group = c.benchmark_group("randomized_top20");
    group.sample_size(10);
    for n in [120usize, 300, 600] {
        let m = low_rank_plus_noise(n, 8, n as u64);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| randomized_top_k(black_box(&m), 20, 8, 3, 7));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_jacobi, bench_randomized);
criterion_main!(benches);
