//! Macro-benchmark: full-system training throughput (measurements
//! processed per second) as population size grows — the scalability
//! dimension behind the paper's "large-scale networks" claim.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dmf_bench::experiments::training::default_config;
use dmf_core::provider::ClassLabelProvider;
use dmf_core::SessionBuilder;
use dmf_datasets::rtt::meridian_like;
use std::hint::black_box;

fn bench_system_ticks(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_ticks");
    group.sample_size(10);
    let ticks = 20_000usize;
    group.throughput(Throughput::Elements(ticks as u64));
    for n in [100usize, 300, 600] {
        let d = meridian_like(n, n as u64);
        let class = d.classify(d.median());
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut provider = ClassLabelProvider::new(class.clone());
                let mut session = SessionBuilder::from_config(default_config(10, 1))
                    .nodes(n)
                    .build()
                    .expect("valid config");
                session
                    .run(black_box(ticks), &mut provider)
                    .expect("provider covers the session");
                session.measurements_used()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_system_ticks);
criterion_main!(benches);
