//! Micro-benchmark: wire codec throughput (the per-probe protocol
//! overhead of a deployment).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dmf_proto::{decode, encode, Message};
use std::hint::black_box;

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    for rank in [10usize, 100] {
        let reply = Message::RttReply {
            nonce: 42,
            u: vec![0.5; rank],
            v: vec![-0.25; rank],
        };
        let wire = encode(&reply);
        group.throughput(Throughput::Bytes(wire.len() as u64));
        group.bench_with_input(BenchmarkId::new("encode_rtt_reply", rank), &rank, |b, _| {
            b.iter(|| encode(black_box(&reply)));
        });
        group.bench_with_input(BenchmarkId::new("decode_rtt_reply", rank), &rank, |b, _| {
            b.iter(|| decode(black_box(&wire)).expect("decode"));
        });
    }
    // The small fixed-size probe datagram.
    let probe = Message::RttProbe { nonce: 7 };
    let probe_wire = encode(&probe);
    group.bench_function("encode_probe", |b| b.iter(|| encode(black_box(&probe))));
    group.bench_function("decode_probe", |b| {
        b.iter(|| decode(black_box(&probe_wire)).expect("decode"))
    });
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
