//! Ablation: wall-clock cost of training with each loss function at a
//! fixed measurement budget (DESIGN.md calls out the hinge/logistic
//! choice as the main algorithmic knob).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmf_bench::experiments::training::default_config;
use dmf_core::provider::ClassLabelProvider;
use dmf_core::{Loss, SessionBuilder};
use dmf_datasets::rtt::meridian_like;
use std::hint::black_box;

fn bench_losses(c: &mut Criterion) {
    let mut group = c.benchmark_group("training_by_loss");
    group.sample_size(10);
    let n = 150usize;
    let d = meridian_like(n, 9);
    let class = d.classify(d.median());
    for loss in [Loss::Logistic, Loss::Hinge] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{loss:?}")),
            &loss,
            |b, &loss| {
                b.iter(|| {
                    let mut cfg = default_config(10, 2);
                    cfg.sgd.loss = loss;
                    let mut provider = ClassLabelProvider::new(class.clone());
                    let mut session = SessionBuilder::from_config(cfg)
                        .nodes(n)
                        .build()
                        .expect("valid config");
                    session
                        .run(black_box(15_000), &mut provider)
                        .expect("provider covers the session");
                    session.measurements_used()
                });
            },
        );
    }
    // Quantity (L2) mode as the regression comparator.
    group.bench_function("L2_quantity_mode", |b| {
        let median = d.median();
        b.iter(|| {
            let cfg = default_config(10, 3).quantity(median);
            let mut provider = dmf_core::provider::QuantityProvider::new(d.clone(), median);
            let mut session = SessionBuilder::from_config(cfg)
                .nodes(n)
                .build()
                .expect("valid config");
            session
                .run(black_box(15_000), &mut provider)
                .expect("provider covers the session");
            session.measurements_used()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_losses);
criterion_main!(benches);
