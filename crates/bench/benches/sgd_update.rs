//! Micro-benchmark: cost of one DMFSGD update as a function of rank.
//!
//! The paper's scalability claim rests on the per-measurement work
//! being O(r) vector arithmetic; this bench quantifies it for the
//! rank sweep of Figure 4a.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dmf_core::config::SgdParams;
use dmf_core::update::sgd_step;
use dmf_core::Loss;
use std::hint::black_box;

fn bench_sgd_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("sgd_step");
    for rank in [3usize, 10, 20, 100] {
        let params = SgdParams {
            eta: 0.1,
            lambda: 0.1,
            loss: Loss::Logistic,
        };
        let fixed: Vec<f64> = (0..rank).map(|i| (i as f64 * 0.37).sin()).collect();
        group.bench_with_input(BenchmarkId::new("logistic", rank), &rank, |b, _| {
            let mut updated: Vec<f64> = (0..rank).map(|i| (i as f64 * 0.21).cos()).collect();
            b.iter(|| {
                sgd_step(black_box(&mut updated), black_box(&fixed), -1.0, &params);
            });
        });
    }
    group.finish();
}

fn bench_full_rtt_measurement(c: &mut Criterion) {
    // Both eq. 9 and eq. 10, plus the coordinate copy the reply carries.
    use dmf_core::DmfsgdNode;
    use rand::SeedableRng;
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
    let params = SgdParams {
        eta: 0.1,
        lambda: 0.1,
        loss: Loss::Logistic,
    };
    let mut group = c.benchmark_group("rtt_measurement");
    for rank in [10usize, 100] {
        let mut a = DmfsgdNode::new(0, rank, &mut rng);
        let b_node = DmfsgdNode::new(1, rank, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(rank), &rank, |bencher, _| {
            bencher.iter(|| {
                let (u, v) = b_node.rtt_reply();
                a.on_rtt_measurement(black_box(1.0), &u, &v, &params);
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sgd_step, bench_full_rtt_measurement);
criterion_main!(benches);
