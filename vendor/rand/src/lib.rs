//! Vendored, dependency-free subset of the [`rand`] crate API.
//!
//! The build environment for this workspace has no network access to
//! crates.io, so the external crates the code was written against are
//! vendored as minimal local implementations. This crate reproduces
//! exactly the surface the workspace uses:
//!
//! * [`RngCore`] — the low-level generator interface
//!   (`next_u32`/`next_u64`/`fill_bytes`).
//! * [`Rng`] — the user-facing extension trait, blanket-implemented
//!   for every `RngCore` (including `dyn RngCore`): `gen`,
//!   `gen_range`, `gen_bool`.
//! * [`SeedableRng`] — seed construction, including the
//!   SplitMix64-based [`SeedableRng::seed_from_u64`].
//! * [`Standard`] / [`Distribution`] — the standard distributions
//!   backing `gen::<f64>()`, `gen::<bool>()`, etc.
//!
//! Integer ranges are sampled with the widening-multiply method; its
//! bias is at most `range / 2^64`, which is negligible for every use
//! in this workspace. Floats in `[0, 1)` use the conventional
//! 53-high-bit construction.
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Raw seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed
    /// with SplitMix64 (the same construction the real `rand` uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// A distribution that can produce values of type `T`.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, all values for integers and `bool`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u32() & 0x8000_0000 != 0
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(
    u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, u128 => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64,
);

/// A range of values that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Widening-multiply bounded sampling: uniform in `[0, bound)`.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return Standard.sample(rng);
                }
                lo.wrapping_add(bounded_u64(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit: $t = Standard.sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        let unit: f64 = self.gen();
        unit < p
    }

    /// Fills `dest` with random bytes (alias of
    /// [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // xorshift so high bits move too
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0 ^ (self.0 >> 29)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let b = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&b[..n]);
            }
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let a = rng.gen_range(10usize..20);
            assert!((10..20).contains(&a));
            let b = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&b));
            let c = rng.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&c));
        }
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = Counter(1);
        let dynrng: &mut dyn RngCore = &mut rng;
        let x: f64 = dynrng.gen();
        assert!((0.0..1.0).contains(&x));
        let n = dynrng.gen_range(0usize..10);
        assert!(n < 10);
    }
}
