//! Vendored, dependency-free ChaCha8 random number generator.
//!
//! Implements the subset of the [`rand_chacha`] crate this workspace
//! uses: [`ChaCha8Rng`] with [`rand::SeedableRng`] (32-byte seed,
//! `seed_from_u64`) and [`rand::RngCore`]. The keystream is the
//! genuine ChaCha stream cipher reduced to 8 rounds (4 double
//! rounds), so its statistical quality matches the real crate even
//! though the exact stream differs from `rand_chacha` for a given
//! `seed_from_u64` input (the seed-expansion function is private to
//! `rand`; we use SplitMix64, see [`rand::SeedableRng::seed_from_u64`]).
//!
//! Everything in this workspace treats the RNG as an arbitrary
//! deterministic stream — no test or experiment depends on matching
//! `rand_chacha`'s exact output.
//!
//! [`rand_chacha`]: https://crates.io/crates/rand_chacha

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher with 8 rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key (8 words) as loaded from the seed.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current keystream block.
    block: [u32; 16],
    /// Next unconsumed word in `block`; 16 means exhausted.
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Words 14–15 are the nonce; zero for RNG use.
        let input = state;
        for _ in 0..4 {
            // One double round: a column round then a diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// The current 64-bit block position in the keystream.
    pub fn get_word_pos(&self) -> u64 {
        self.counter
    }

    /// Dumps the complete generator state as `(key, counter, index)`.
    ///
    /// `counter` is the *next* block counter (the one the internal
    /// refill would consume next had the current block been exhausted)
    /// and `index` is the next unconsumed word of the current block
    /// (`16` when the block is exhausted). Together with the key this
    /// pins the exact position in the keystream:
    /// [`ChaCha8Rng::from_state`] rebuilds a generator whose future
    /// output is bit-identical.
    pub fn dump_state(&self) -> ([u32; 8], u64, usize) {
        (self.key, self.counter, self.index)
    }

    /// Rebuilds a generator from a [`dump_state`] triple. The current
    /// keystream block is recomputed from the key and counter, so the
    /// restored generator continues bit-identically.
    ///
    /// Returns `None` when `index > 16` (no such state exists).
    ///
    /// [`dump_state`]: ChaCha8Rng::dump_state
    pub fn from_state(key: [u32; 8], counter: u64, index: usize) -> Option<Self> {
        if index > 16 {
            return None;
        }
        let mut rng = Self {
            key,
            counter,
            block: [0; 16],
            index: 16,
        };
        if index < 16 {
            // The live block belongs to the *previous* counter value
            // (refill consumes the counter then increments it).
            rng.counter = counter.wrapping_sub(1);
            rng.refill();
            debug_assert_eq!(rng.counter, counter);
            rng.index = index;
        }
        Some(rng)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            *word = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Fast path: both words from the current block with a single
        // bounds check. Consumes exactly the same keystream words in
        // the same order as two `next_u32` calls.
        if self.index + 2 <= 16 {
            let lo = self.block[self.index] as u64;
            let hi = self.block[self.index + 1] as u64;
            self.index += 2;
            return (hi << 32) | lo;
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    /// RFC 7539 §2.3.2 test vector, reduced-round variant cross-check:
    /// with the all-zero key the first block must match the reference
    /// ChaCha8 keystream.
    #[test]
    fn chacha8_zero_key_first_block() {
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        // Reference keystream of ChaCha8 with zero key/nonce/counter
        // (eSTREAM reference implementation) begins with the bytes
        // 3e 00 ef 2f 89 5f 40 d6 7f 5b b8 e8 1f 09 a5 a1; state
        // words serialize little-endian.
        let expected_bytes: [u8; 16] = [
            0x3e, 0x00, 0xef, 0x2f, 0x89, 0x5f, 0x40, 0xd6, 0x7f, 0x5b, 0xb8, 0xe8, 0x1f, 0x09,
            0xa5, 0xa1,
        ];
        let mut got = [0u8; 16];
        rng.fill_bytes(&mut got);
        assert_eq!(got, expected_bytes);
    }

    #[test]
    fn deterministic_for_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn state_roundtrip_is_exact_at_every_phase() {
        // Dump/restore must be exact whether the block is fresh,
        // mid-consumption, or exhausted.
        for consumed in [0usize, 1, 7, 15, 16, 17, 31, 32, 100] {
            let mut original = ChaCha8Rng::seed_from_u64(99);
            for _ in 0..consumed {
                original.next_u32();
            }
            let (key, counter, index) = original.dump_state();
            let mut restored = ChaCha8Rng::from_state(key, counter, index).expect("valid state");
            for step in 0..64 {
                assert_eq!(
                    original.next_u64(),
                    restored.next_u64(),
                    "divergence at step {step} after {consumed} consumed words"
                );
            }
        }
    }

    #[test]
    fn from_state_rejects_impossible_index() {
        assert!(ChaCha8Rng::from_state([0; 8], 0, 17).is_none());
    }

    #[test]
    fn floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
