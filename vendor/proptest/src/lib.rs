//! Vendored, dependency-light property-testing harness.
//!
//! Reproduces the subset of the [`proptest`] crate API this workspace
//! uses: the [`proptest!`] macro (with `#![proptest_config]`,
//! multiple bindings, `mut` patterns), [`prop_assert!`] /
//! [`prop_assert_eq!`] / [`prop_assert_ne!`] / [`prop_assume!`],
//! range and tuple strategies, [`strategy::Just`],
//! [`prop_oneof!`], `prop_map` / `prop_flat_map`,
//! [`collection::vec`] and [`prelude::any`].
//!
//! Differences from the real crate, none of which the workspace's
//! tests depend on:
//!
//! * inputs are generated from a deterministic per-test ChaCha8
//!   stream (seeded from the test name), so failures reproduce on
//!   every run;
//! * there is **no shrinking** — a failing case reports the case
//!   index and message as-is;
//! * rejected cases ([`prop_assume!`]) are skipped rather than
//!   resampled.
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Configuration accepted via `#![proptest_config(..)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// The case was rejected by [`prop_assume!`](crate::prop_assume);
        /// it is skipped.
        Reject,
    }

    impl TestCaseError {
        /// Constructs a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    /// The deterministic RNG driving input generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub ChaCha8Rng);

    impl TestRng {
        /// A generator for the given test name and case index.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(ChaCha8Rng::seed_from_u64(
                h ^ ((case as u64) << 32 | case as u64),
            ))
        }
    }
}

/// Input-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, builds a second strategy
        /// from it, and samples that.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A heap-allocated, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the held value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between several strategies of one value type
    /// (the engine behind [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.0.gen_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
    );

    /// Produces arbitrary values of `T` (see [`any`](crate::prelude::any)).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    /// Types with a natural full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.0.gen()
                }
            }
        )*};
    }

    impl_arbitrary_via_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        /// Finite values spanning a wide range; the real crate also
        /// produces NaN/∞, which no test here relies on.
        fn arbitrary(rng: &mut TestRng) -> f64 {
            let unit: f64 = rng.0.gen();
            let exp = rng.0.gen_range(-300i32..300);
            let sign = if rng.0.gen::<bool>() { 1.0 } else { -1.0 };
            sign * (unit + f64::MIN_POSITIVE) * 2f64.powi(exp)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs, re-exported.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
    use std::marker::PhantomData;

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Defines property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (@run $cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {case}/{} of `{}` failed: {msg}",
                                config.cases,
                                stringify!($name),
                            );
                        }
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @run $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @run $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Asserts a condition inside [`proptest!`]; failure fails the case
/// with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)+);
    }};
}

/// Asserts inequality inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`",
            stringify!($left),
            stringify!($right)
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, $($fmt)+);
    }};
}

/// Skips the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

/// Uniform choice among several strategies producing one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_and_map_compose(
            v in collection::vec(0u8..=255, 1..8),
            tag in prop_oneof![Just(1i32), Just(2i32)],
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(tag == 1 || tag == 2);
        }

        #[test]
        fn flat_map_square_matrices(
            (n, data) in (1usize..5).prop_flat_map(|n| {
                (Just(n), collection::vec(0.0f64..1.0, n * n))
            })
        ) {
            prop_assert_eq!(data.len(), n * n);
        }

        #[test]
        fn assume_skips(mut x in 0u32..10) {
            prop_assume!(x != 3);
            x += 1;
            prop_assert_ne!(x, 4);
        }
    }

    #[test]
    fn determinism_across_runs() {
        let s = crate::collection::vec(0u64..1000, 3..6);
        let mut r1 = TestRng::for_case("determinism", 0);
        let mut r2 = TestRng::for_case("determinism", 0);
        assert_eq!(
            Strategy::generate(&s, &mut r1),
            Strategy::generate(&s, &mut r2)
        );
    }
}
