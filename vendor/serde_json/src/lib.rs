//! Vendored, dependency-free JSON encoder/decoder over the local
//! [`serde`] subset.
//!
//! Provides the call surface the workspace uses: [`to_string`],
//! [`to_string_pretty`] and [`from_str`]. Values go through
//! [`serde::Value`]; numbers are `f64` (shortest-roundtrip printed,
//! so `1.0` and integers survive a write/read cycle bit-exactly).
//! Non-finite floats serialize as `null`, matching the real
//! `serde_json`'s lossy float handling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON encoding or decoding failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 1e15 {
        // Integral values print without a fractional part, like the
        // real serde_json prints integer types.
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is the shortest representation that roundtrips.
        out.push_str(&format!("{n}"));
    }
}

fn write_value(v: &Value, out: &mut String, pretty: bool, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                }
                write_value(item, out, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&PAD.repeat(indent + 1));
                }
                write_escaped(key, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(val, out, pretty, indent + 1);
            }
            if pretty {
                out.push('\n');
                out.push_str(&PAD.repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, false, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, true, 0);
    Ok(out)
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn consume_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.consume_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.consume_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.consume_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.err("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => return Err(self.err("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // encoder; reject them rather than decode
                            // incorrectly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one char. The input arrived as &str, so
                    // it is valid UTF-8 by construction, and `pos`
                    // only ever advances past whole chars — slicing
                    // here is O(1) and cannot fail.
                    let c = self.text[self.pos..].chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Parses JSON text into a value of type `T`.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_vec() {
        let v = vec![1.5f64, -2.0, 3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,-2,3.25]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_nested_value() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("a \"b\"\n".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            ("n".into(), Value::Number(1e-3)),
        ]);
        let json = to_string(&v).unwrap();
        let back: Value = from_str(&json).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("01x").is_err());
        assert!(from_str::<Value>("true false").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&vec![1i32, 2, 3]).unwrap(), "[1,2,3]");
        assert_eq!(to_string(&7usize).unwrap(), "7");
    }
}
