//! Vendored, dependency-free subset of the [`bytes`] crate API.
//!
//! Provides the little-endian cursor reads/writes the `dmf-proto`
//! codec uses: [`Buf`] implemented for `&[u8]` (reading advances the
//! slice), [`BytesMut`] as a growable write buffer implementing
//! [`BufMut`], and the frozen immutable [`Bytes`]. Unlike the real
//! crate there is no reference-counted sharing — `Bytes` owns its
//! allocation — which is irrelevant for the datagram-sized buffers
//! used here.
//!
//! [`bytes`]: https://crates.io/crates/bytes

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};

/// Sequential read access to a byte cursor.
///
/// Getter methods panic when fewer than the required bytes remain,
/// matching the real crate; callers check [`Buf::remaining`] first.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// Consumes `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copies the next `dst.len()` bytes out and consumes them.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// True when at least one byte remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads one signed byte.
    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends one signed byte.
    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// A growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Creates an empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.inner
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

/// An immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self { inner: Vec::new() }
    }

    /// Number of bytes held.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.inner.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Self { inner }
    }
}

impl From<&[u8]> for Bytes {
    fn from(slice: &[u8]) -> Self {
        Self {
            inner: slice.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_fields() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_f64_le(-1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u16_le(), 0xBEEF);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cursor.get_f64_le(), -1.5);
        assert!(!cursor.has_remaining());
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32_le();
    }
}
