//! Vendored, dependency-free micro-benchmark harness.
//!
//! Reproduces the subset of the [`criterion`] crate API the
//! workspace's `crates/bench/benches/*` files use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), [`Bencher::iter`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (benches are declared `harness = false`).
//!
//! Measurement model: each benchmark is warmed up for ~50 ms, then
//! timed over `sample_size` samples (default 20); each sample runs a
//! batch sized so one batch takes roughly 5 ms of wall clock. The
//! median, minimum and maximum per-iteration times are printed,
//! along with derived throughput when one was declared. There is no
//! statistical regression analysis, HTML report, or saved baseline —
//! this is a wall-clock harness good enough to compare hot paths on
//! one machine.
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Declared work per iteration, for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is only a parameter (the group supplies the name).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId { name: name.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId { name }
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    sample_size: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up for ~50 ms and estimate the per-iteration cost.
        let warmup = Duration::from_millis(50);
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < warmup {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size one batch at ~5 ms.
        let batch = ((0.005 / per_iter).ceil() as u64).max(1);
        self.iters_per_sample = batch;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let fmt = |secs: f64| -> String {
            if secs < 1e-6 {
                format!("{:.1} ns", secs * 1e9)
            } else if secs < 1e-3 {
                format!("{:.2} µs", secs * 1e6)
            } else if secs < 1.0 {
                format!("{:.2} ms", secs * 1e3)
            } else {
                format!("{secs:.3} s")
            }
        };
        let mut line = format!(
            "{label:<40} time: [{} {} {}]",
            fmt(min),
            fmt(median),
            fmt(max)
        );
        match throughput {
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / median / (1024.0 * 1024.0);
                line.push_str(&format!("  thrpt: {rate:.1} MiB/s"));
            }
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / median;
                line.push_str(&format!("  thrpt: {rate:.0} elem/s"));
            }
            None => {}
        }
        println!("{line}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with no extra input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        bencher.report(&format!("{}/{}", self.name, id.name), self.throughput);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.name), self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark manager; one per process.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored; the
    /// vendored harness has no tunable CLI).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("encode", 32).name, "encode/32");
        assert_eq!(BenchmarkId::from_parameter(100).name, "100");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
