//! Vendored `#[derive(Serialize, Deserialize)]` macros for the local
//! serde subset.
//!
//! Implemented directly on `proc_macro` (no syn/quote, which are
//! unavailable offline). Supports the shapes this workspace actually
//! derives on:
//!
//! * structs with named fields,
//! * enums whose variants are unit or have named fields
//!   (externally tagged, matching serde's default representation:
//!   `"Variant"` for unit, `{"Variant": {..fields..}}` otherwise).
//!
//! Generics, tuple structs and `#[serde(...)]` attributes are not
//! supported and fail with a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field names in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Enum: `(variant, named fields)`; an empty field list is a unit
    /// variant.
    Enum {
        name: String,
        variants: Vec<(String, Vec<String>)>,
    },
}

/// Skips `#[...]` attribute sequences starting at `i`.
fn skip_attributes(tokens: &[TokenTree], mut i: usize) -> usize {
    while i + 1 < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            _ => break,
        }
    }
    i
}

/// Skips `pub` / `pub(...)` starting at `i`.
fn skip_visibility(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

/// Parses the fields of a named-field body (struct or enum variant).
fn parse_named_fields(body: &TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attributes(&tokens, i);
        i = skip_visibility(&tokens, i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde derive: expected field name, found `{other}`"),
        };
        i += 1;
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde derive: expected `:` after field `{name}`, found `{other}`"),
        }
        // Skip the type: everything up to a comma at angle-bracket
        // depth zero (groups are atomic tokens, so only `<`/`>` need
        // tracking).
        let mut depth = 0i64;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    i = skip_attributes(&tokens, i);
    i = skip_visibility(&tokens, i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found `{other}`"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde derive: expected type name, found `{other}`"),
    };
    i += 1;
    match &tokens[i] {
        TokenTree::Punct(p) if p.as_char() == '<' => {
            panic!("serde derive (vendored): generic type `{name}` is not supported")
        }
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            let body = g.stream();
            match kind.as_str() {
                "struct" => Shape::Struct {
                    name,
                    fields: parse_named_fields(&body),
                },
                "enum" => {
                    let tokens: Vec<TokenTree> = body.into_iter().collect();
                    let mut variants = Vec::new();
                    let mut j = 0;
                    while j < tokens.len() {
                        j = skip_attributes(&tokens, j);
                        if j >= tokens.len() {
                            break;
                        }
                        let vname = match &tokens[j] {
                            TokenTree::Ident(id) => id.to_string(),
                            other => panic!("serde derive: expected variant name, found `{other}`"),
                        };
                        j += 1;
                        let mut vfields = Vec::new();
                        match tokens.get(j) {
                            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                                vfields = parse_named_fields(&g.stream());
                                j += 1;
                            }
                            Some(TokenTree::Group(g))
                                if g.delimiter() == Delimiter::Parenthesis =>
                            {
                                panic!(
                                    "serde derive (vendored): tuple variant `{name}::{vname}` \
                                     is not supported"
                                )
                            }
                            _ => {}
                        }
                        if let Some(TokenTree::Punct(p)) = tokens.get(j) {
                            if p.as_char() == ',' {
                                j += 1;
                            }
                        }
                        variants.push((vname, vfields));
                    }
                    Shape::Enum { name, variants }
                }
                other => panic!("serde derive: unsupported item kind `{other}`"),
            }
        }
        other => panic!(
            "serde derive (vendored): only brace-bodied structs/enums are supported, found `{other}`"
        ),
    }
}

/// `#[derive(Serialize)]`: implements `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, fields)| {
                    if fields.is_empty() {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::String(::std::string::String::from(\"{v}\")),"
                        )
                    } else {
                        let bindings = fields.join(", ");
                        let entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{f}\"), \
                                     ::serde::Serialize::to_value({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {bindings} }} => ::serde::Value::Object(::std::vec![(\
                                 ::std::string::String::from(\"{v}\"), \
                                 ::serde::Value::Object(::std::vec![{entries}])\
                             )]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde derive: generated code must parse")
}

/// `#[derive(Deserialize)]`: implements `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get(\"{f}\")\
                         .ok_or_else(|| ::serde::DeError::missing_field(\"{f}\", \"{name}\"))?)?,"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, fields)| fields.is_empty())
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter(|(_, fields)| !fields.is_empty())
                .map(|(v, fields)| {
                    let inits: String = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(payload.get(\"{f}\")\
                                 .ok_or_else(|| ::serde::DeError::missing_field(\
                                     \"{f}\", \"{name}::{v}\"))?)?,"
                            )
                        })
                        .collect();
                    format!("\"{v}\" => ::std::result::Result::Ok({name}::{v} {{ {inits} }}),")
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::String(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, payload) = &entries[0];\n\
                                 let _ = payload;\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         ::std::format!(\"unknown {name} variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::DeError::wrong_type(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde derive: generated code must parse")
}
