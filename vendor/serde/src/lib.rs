//! Vendored, dependency-free subset of the [`serde`] facade.
//!
//! The real serde separates data model and format; this workspace
//! only ever serializes to and from JSON (via the vendored
//! [`serde_json`](../serde_json/index.html)), so the vendored traits
//! go through an explicit JSON-shaped [`Value`] tree instead of
//! serde's visitor machinery:
//!
//! * [`Serialize`] — convert `self` into a [`Value`].
//! * [`Deserialize`] — rebuild `Self` from a [`Value`].
//! * `#[derive(Serialize, Deserialize)]` — provided by the vendored
//!   `serde_derive` proc-macro for named-field structs and enums.
//!
//! Numbers are carried as `f64`; integers above 2^53 would lose
//! precision, but no serialized type in this workspace stores such
//! values (matrix dimensions, node counts, and measurements all fit
//! comfortably).
//!
//! [`serde`]: https://crates.io/crates/serde

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A JSON-shaped value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (always an `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error from any message.
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// A field was absent from the serialized object.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError(format!("missing field `{field}` while reading {ty}"))
    }

    /// The value had the wrong JSON type.
    pub fn wrong_type(expected: &str, got: &Value) -> Self {
        let kind = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError(format!("expected {expected}, got {kind}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::wrong_type("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::wrong_type("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

macro_rules! impl_serialize_num {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            #[allow(clippy::float_cmp)]
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Number(n) => {
                        let cast = *n as $t;
                        if (cast as f64) == *n {
                            Ok(cast)
                        } else {
                            Err(DeError::custom(format!(
                                "number {n} does not fit in {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(DeError::wrong_type("number", other)),
                }
            }
        }
    )*};
}

impl_serialize_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::wrong_type("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => {
                if items.len() != N {
                    return Err(DeError::custom(format!(
                        "expected array of {N}, got {}",
                        items.len()
                    )));
                }
                let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
                parsed
                    .try_into()
                    .map_err(|_| DeError::custom("array length mismatch"))
            }
            other => Err(DeError::wrong_type("array", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::custom(format!(
                                "expected tuple of {expected}, got array of {}",
                                items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::wrong_type("array", other)),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
