//! Integration tests for the service-grade `Session` API: panic-free
//! error handling end to end, churn regression (AUC recovers past 0.8
//! after 20% turnover), snapshot/restore across front-ends.

use dmfsgd::core::provider::ClassLabelProvider;
use dmfsgd::core::runner::SimnetDriver;
use dmfsgd::core::session::OracleDriver;
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::simnet::NetConfig;
use dmfsgd::{ConfigError, DmfsgdError, MembershipError, Session, Snapshot, SnapshotError};

fn auc_of(session: &Session, classes: &dmfsgd::datasets::ClassMatrix) -> f64 {
    auc(&collect_scores(classes, &session.predicted_scores()))
}

/// The headline churn regression: 20% of a 100-node population leaves,
/// training continues, the slots rejoin cold, and accuracy must climb
/// back above 0.8 AUC.
#[test]
fn auc_recovers_above_080_after_20_percent_turnover() {
    let n = 100;
    let dataset = meridian_like(n, 31);
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    let mut provider = ClassLabelProvider::new(classes.clone());
    let mut session = Session::builder()
        .nodes(n)
        .k(10)
        .seed(31)
        .tau(tau)
        .build()
        .expect("valid config");

    session.run(n * 10 * 20, &mut provider).expect("warmup");
    let steady = auc_of(&session, &classes);
    assert!(steady > 0.85, "steady-state AUC {steady}");

    // 20% turnover: every 5th node leaves…
    for id in (0..n).step_by(5) {
        session.leave(id).expect("leave");
    }
    assert_eq!(session.num_alive(), n - n / 5);
    session
        .run(n * 10 * 5, &mut provider)
        .expect("survivor run");

    // …and the slots are re-admitted with cold coordinates.
    for _ in 0..n / 5 {
        session.join().expect("rejoin");
    }
    assert_eq!(session.num_alive(), n);
    let cold = auc_of(&session, &classes);

    session.run(n * 10 * 25, &mut provider).expect("recovery");
    let recovered = auc_of(&session, &classes);
    assert!(
        recovered > 0.8,
        "AUC must recover past 0.8 after 20% turnover: cold {cold}, recovered {recovered}"
    );
    assert!(
        recovered > cold,
        "recovery training must improve on the cold rejoin state ({cold} → {recovered})"
    );
}

/// No public session API panics on bad caller input — each failure
/// mode is a typed `DmfsgdError` variant, reachable via facade paths.
#[test]
fn every_failure_mode_is_a_typed_error() {
    // Construction.
    assert!(matches!(
        Session::builder().nodes(5).k(10).build(),
        Err(ConfigError::TooFewNodes { n: 5, k: 10 })
    ));
    assert!(matches!(
        Session::builder().nodes(30).eta(-1.0).build(),
        Err(ConfigError::Eta { .. })
    ));
    assert!(matches!(
        Session::builder().nodes(30).tau(0.0).build(),
        Err(ConfigError::Tau { .. })
    ));

    let d = meridian_like(30, 32);
    let mut session = Session::builder()
        .nodes(30)
        .k(6)
        .seed(32)
        .build()
        .expect("valid config");

    // Queries.
    assert!(matches!(
        session.predict(0, 0),
        Err(DmfsgdError::Membership(MembershipError::SelfPair { id: 0 }))
    ));
    assert!(matches!(
        session.predict(0, 999),
        Err(DmfsgdError::Membership(MembershipError::UnknownNode { .. }))
    ));

    // Membership.
    session.leave(3).expect("leave");
    assert!(matches!(
        session.leave(3),
        Err(DmfsgdError::Membership(MembershipError::Departed { id: 3 }))
    ));
    assert!(matches!(
        session.predict(3, 4),
        Err(DmfsgdError::Membership(MembershipError::Departed { id: 3 }))
    ));

    // Provider mismatch.
    let small = meridian_like(10, 33);
    let mut provider = ClassLabelProvider::new(small.classify(small.median()));
    assert!(matches!(
        session.run(5, &mut provider),
        Err(DmfsgdError::Membership(
            MembershipError::ProviderMismatch { .. }
        ))
    ));

    // Drivers: missing τ, mismatched dataset.
    assert!(matches!(
        SimnetDriver::new(&session, d.clone(), NetConfig::default()),
        Err(DmfsgdError::Config(ConfigError::MissingTau))
    ));
    assert!(matches!(
        OracleDriver::new(ClassLabelProvider::new(d.classify(d.median())), 0),
        Err(ConfigError::ZeroTicks)
    ));

    // Snapshots: corrupt JSON parses or restores to a typed error.
    assert!(matches!(
        Snapshot::from_json("not json at all"),
        Err(SnapshotError::Parse(_))
    ));
    let json = session.snapshot().to_json();
    let tampered = json.replace("\"alive\":[", "\"alive\":[9999,");
    let snap = Snapshot::from_json(&tampered).expect("syntactically fine");
    assert!(matches!(
        Session::restore(&snap),
        Err(DmfsgdError::Snapshot(SnapshotError::Corrupt(_)))
    ));
}

/// A session trained by matrix replay, snapshotted, restored, and then
/// handed to the *simnet* front-end keeps learning — front-ends are
/// interchangeable behind the `Driver` trait.
#[test]
fn snapshot_bridges_front_ends() {
    let n = 40;
    let dataset = meridian_like(n, 34);
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    let mut session = Session::builder()
        .nodes(n)
        .k(10)
        .seed(34)
        .tau(tau)
        .build()
        .expect("valid config");

    // Warm up via the oracle front-end.
    let mut oracle = OracleDriver::new(ClassLabelProvider::new(classes.clone()), n * 10 * 10)
        .expect("nonzero ticks");
    session.drive(&mut oracle, 1).expect("oracle warmup");
    let warm = auc_of(&session, &classes);

    // Checkpoint through JSON, restore, continue over the simulated
    // network.
    let snap = Snapshot::from_json(&session.snapshot().to_json()).expect("roundtrip");
    let mut restored = Session::restore(&snap).expect("restore");
    let mut simnet = SimnetDriver::new(&restored, dataset, NetConfig::default())
        .expect("valid driver")
        .with_probe_interval(0.5)
        .expect("positive interval");
    simnet.run_until(&mut restored, 120.0).expect("simnet run");

    let continued = auc_of(&restored, &classes);
    assert!(
        continued > warm - 0.05,
        "simnet continuation must preserve oracle progress: {warm} → {continued}"
    );
    assert!(
        restored.measurements_used() > session.measurements_used(),
        "the restored session must have kept training"
    );
}
