//! Integration: the three execution substrates — oracle-driven
//! simulation, event-driven message simulation, and real UDP agents —
//! must all learn the same structure.

use dmfsgd::core::provider::ClassLabelProvider;
use dmfsgd::core::runner::{sign_agreement, SimnetRunner};
use dmfsgd::core::{DmfsgdConfig, SessionBuilder};
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::simnet::NetConfig;

#[test]
fn oracle_and_simnet_training_agree() {
    let dataset = meridian_like(50, 1);
    let tau = dataset.median();
    let classes = dataset.classify(tau);

    let mut provider = ClassLabelProvider::new(classes.clone());
    let mut cfg = DmfsgdConfig::paper_defaults();
    cfg.seed = 1;
    let mut oracle_system = SessionBuilder::from_config(cfg)
        .nodes(50)
        .build()
        .expect("valid config");
    oracle_system
        .run(50 * 10 * 30, &mut provider)
        .expect("provider covers the session");
    let auc_oracle = auc(&collect_scores(&classes, &oracle_system.predicted_scores()));

    let mut runner = SimnetRunner::new(dataset, tau, cfg, NetConfig::default())
        .expect("valid config")
        .with_probe_interval(0.5)
        .expect("positive interval");
    runner.run_for(200.0).expect("positive duration");
    let auc_simnet = auc(&collect_scores(&classes, &runner.predicted_scores()));

    assert!(auc_oracle > 0.85, "oracle AUC {auc_oracle}");
    assert!(
        auc_simnet > auc_oracle - 0.08,
        "simnet AUC {auc_simnet} lags oracle {auc_oracle}"
    );
    // Beyond matching AUC, the two front-ends must agree pair by pair
    // on most class predictions — they learned the same structure,
    // not merely structures of equal quality.
    let agreement = sign_agreement(&oracle_system, &runner);
    assert!(
        agreement > 0.75,
        "oracle/simnet per-pair sign agreement {agreement}"
    );
}

#[test]
fn message_loss_degrades_gracefully() {
    // 40% datagram loss: fewer completed measurements, similar final
    // structure given enough simulated time.
    let dataset = meridian_like(40, 2);
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    let cfg = DmfsgdConfig::paper_defaults();

    let run = |loss: f64, seconds: f64| {
        let mut runner = SimnetRunner::new(
            dataset.clone(),
            tau,
            cfg,
            NetConfig {
                loss_probability: loss,
                seed: 3,
                ..NetConfig::default()
            },
        )
        .expect("valid config")
        .with_probe_interval(0.5)
        .expect("positive interval");
        runner.run_for(seconds).expect("positive duration");
        (
            auc(&collect_scores(&classes, &runner.predicted_scores())),
            runner.stats(),
        )
    };

    let (auc_clean, stats_clean) = run(0.0, 150.0);
    let (auc_lossy, stats_lossy) = run(0.4, 250.0);
    assert!(
        stats_lossy.measurements_completed < stats_clean.measurements_completed,
        "loss must cost measurements"
    );
    assert!(auc_clean > 0.8);
    assert!(
        auc_lossy > 0.75,
        "40% loss should not break convergence: AUC {auc_lossy}"
    );
}

#[test]
fn udp_cluster_matches_oracle_training() {
    use dmfsgd::agent::{ClusterConfig, UdpCluster};
    use std::time::Duration;

    let dataset = meridian_like(20, 4);
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    let outcome = UdpCluster::run(
        dataset,
        tau,
        ClusterConfig {
            duration: Duration::from_millis(2000),
            probe_interval: Duration::from_millis(2),
            ..ClusterConfig::default()
        },
    )
    .expect("cluster");
    let a = auc(&collect_scores(&classes, &outcome.predicted_scores()));
    assert!(a > 0.75, "UDP cluster AUC {a}");
}
