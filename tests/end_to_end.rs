//! Cross-crate integration: full pipelines from dataset generation to
//! evaluated prediction, exercising the paper's three dataset shapes.

use dmfsgd::core::provider::{ClassLabelProvider, ProbedClassProvider};
use dmfsgd::core::{DmfsgdConfig, SessionBuilder};
use dmfsgd::datasets::abw::hps3_like;
use dmfsgd::datasets::dynamic::{harvard_like, HarvardConfig};
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::eval::{collect_scores, roc::auc, ConfusionMatrix};

fn train_and_auc(dataset: &dmfsgd::datasets::Dataset, k: usize, seed: u64) -> f64 {
    let tau = dataset.median();
    let classes = dataset.classify(tau);
    let mut provider = ClassLabelProvider::new(classes.clone());
    let mut cfg = DmfsgdConfig::paper_defaults().with_k(k);
    cfg.seed = seed;
    let mut system = SessionBuilder::from_config(cfg)
        .nodes(dataset.len())
        .build()
        .expect("valid config");
    system
        .run(dataset.len() * k * 25, &mut provider)
        .expect("provider covers the session");
    auc(&collect_scores(&classes, &system.predicted_scores()))
}

#[test]
fn meridian_like_pipeline_reaches_paper_accuracy_band() {
    let dataset = meridian_like(120, 1);
    let a = train_and_auc(&dataset, 16, 1);
    assert!(a > 0.9, "Meridian-like AUC {a}");
}

#[test]
fn hps3_like_pipeline_reaches_paper_accuracy_band() {
    let dataset = hps3_like(120, 2);
    let a = train_and_auc(&dataset, 10, 2);
    assert!(a > 0.9, "HP-S3-like AUC {a}");
}

#[test]
fn harvard_like_trace_replay_pipeline() {
    let (trace, ground_truth) = harvard_like(&HarvardConfig::new(80, 80_000), 3);
    let tau = ground_truth.median();
    let classes = ground_truth.classify(tau);
    let mut cfg = DmfsgdConfig::paper_defaults();
    cfg.seed = 3;
    let mut system = SessionBuilder::from_config(cfg)
        .nodes(80)
        .build()
        .expect("valid config");
    system
        .run_trace(&trace, tau)
        .expect("trace matches the session");
    let a = auc(&collect_scores(&classes, &system.predicted_scores()));
    assert!(a > 0.85, "Harvard-like trace AUC {a}");
}

#[test]
fn probed_measurements_match_label_training_closely() {
    // Training from noisy pathload/ping probes must land near training
    // from exact labels (the paper's cheap-measurement thesis).
    let dataset = hps3_like(90, 4);
    let tau = dataset.median();
    let classes = dataset.classify(tau);

    let mut exact_provider = ClassLabelProvider::new(classes.clone());
    let mut cfg = DmfsgdConfig::paper_defaults();
    cfg.seed = 4;
    let mut exact = SessionBuilder::from_config(cfg)
        .nodes(90)
        .build()
        .expect("valid config");
    exact
        .run(90 * 10 * 25, &mut exact_provider)
        .expect("provider covers the session");
    let auc_exact = auc(&collect_scores(&classes, &exact.predicted_scores()));

    let mut probe_provider = ProbedClassProvider::new(dataset.clone(), tau);
    let mut cfg2 = DmfsgdConfig::paper_defaults();
    cfg2.seed = 5;
    let mut probed = SessionBuilder::from_config(cfg2)
        .nodes(90)
        .build()
        .expect("valid config");
    probed
        .run(90 * 10 * 25, &mut probe_provider)
        .expect("provider covers the session");
    let auc_probed = auc(&collect_scores(&classes, &probed.predicted_scores()));

    assert!(
        auc_probed > auc_exact - 0.05,
        "probe-trained {auc_probed} too far below label-trained {auc_exact}"
    );
}

#[test]
fn accuracy_table_shape_on_all_three_datasets() {
    // Table 2's structure: accuracy > 80%, diagonal-dominant confusion.
    for (dataset, k, seed) in [
        (meridian_like(100, 6), 16usize, 6u64),
        (hps3_like(100, 7), 10, 7),
    ] {
        let tau = dataset.median();
        let classes = dataset.classify(tau);
        let mut provider = ClassLabelProvider::new(classes.clone());
        let mut cfg = DmfsgdConfig::paper_defaults().with_k(k);
        cfg.seed = seed;
        let mut system = SessionBuilder::from_config(cfg)
            .nodes(dataset.len())
            .build()
            .expect("valid config");
        system
            .run(dataset.len() * k * 25, &mut provider)
            .expect("provider covers the session");
        let cm = ConfusionMatrix::at_sign(&collect_scores(&classes, &system.predicted_scores()));
        assert!(
            cm.accuracy() > 0.8,
            "{}: accuracy {}",
            dataset.name,
            cm.accuracy()
        );
        assert!(
            cm.good_recall() > 0.7,
            "{}: G-recall {}",
            dataset.name,
            cm.good_recall()
        );
        assert!(
            cm.bad_recall() > 0.7,
            "{}: B-recall {}",
            dataset.name,
            cm.bad_recall()
        );
    }
}

#[test]
fn different_tau_portions_stay_usable() {
    // Figure 4c's claim at integration level.
    let dataset = meridian_like(90, 8);
    for portion in [0.25, 0.5, 0.75] {
        let tau = dataset.tau_for_good_portion(portion);
        let classes = dataset.classify(tau);
        let mut provider = ClassLabelProvider::new(classes.clone());
        let mut cfg = DmfsgdConfig::paper_defaults();
        cfg.seed = 9;
        let mut system = SessionBuilder::from_config(cfg)
            .nodes(90)
            .build()
            .expect("valid config");
        system
            .run(90 * 10 * 25, &mut provider)
            .expect("provider covers the session");
        let a = auc(&collect_scores(&classes, &system.predicted_scores()));
        assert!(a > 0.8, "portion {portion}: AUC {a}");
    }
}
