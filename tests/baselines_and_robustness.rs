//! Integration: decentralized DMFSGD against its centralized
//! counterpart and the erroneous-measurement scenarios.

use dmfsgd::baselines::centralized::batch_gd_class;
use dmfsgd::baselines::vivaldi::{Vivaldi, VivaldiConfig};
use dmfsgd::core::provider::ClassLabelProvider;
use dmfsgd::core::{DmfsgdConfig, Loss, SessionBuilder};
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::simnet::errors::{calibrate_delta, inject, BandErrorKind, ErrorModel};
use dmfsgd::simnet::NeighborSets;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn decentralized_approaches_centralized_optimum() {
    let dataset = meridian_like(80, 1);
    let classes = dataset.classify(dataset.median());

    let central = batch_gd_class(&classes, 10, Loss::Logistic, 0.1, 0.1, 120, 1);
    let auc_central = auc(&collect_scores(&classes, &central.predicted_scores()));

    let mut provider = ClassLabelProvider::new(classes.clone());
    let mut cfg = DmfsgdConfig::paper_defaults();
    cfg.seed = 1;
    let mut system = SessionBuilder::from_config(cfg)
        .nodes(80)
        .build()
        .expect("valid config");
    system
        .run(80 * 10 * 30, &mut provider)
        .expect("provider covers the session");
    let auc_dec = auc(&collect_scores(&classes, &system.predicted_scores()));

    assert!(auc_central > 0.9, "centralized AUC {auc_central}");
    assert!(
        auc_dec > auc_central - 0.1,
        "decentralized {auc_dec} must approach centralized {auc_central}"
    );
}

#[test]
fn near_tau_errors_hurt_less_than_random_flips() {
    // The core of Figure 6 at integration level.
    let dataset = meridian_like(80, 2);
    let tau = dataset.median();
    let clean = dataset.classify(tau);
    let train_auc = |class: &dmfsgd::datasets::ClassMatrix, seed: u64| {
        let mut provider = ClassLabelProvider::new(class.clone());
        let mut cfg = DmfsgdConfig::paper_defaults();
        cfg.seed = seed;
        let mut system = SessionBuilder::from_config(cfg)
            .nodes(80)
            .build()
            .expect("valid config");
        system
            .run(80 * 10 * 25, &mut provider)
            .expect("provider covers the session");
        auc(&collect_scores(&clean, &system.predicted_scores()))
    };

    // Average over several injection/training seeds: at n = 80 a
    // single draw can tie the two error types; the paper's effect is a
    // population-level ordering.
    let delta = calibrate_delta(&dataset, tau, 0.15, BandErrorKind::FlipNearTau);
    let mut auc_near_sum = 0.0;
    let mut auc_random_sum = 0.0;
    let runs = 3;
    for round in 0..runs {
        let mut rng = ChaCha8Rng::seed_from_u64(7 + round);
        let mut near_tau = clean.clone();
        inject(
            &mut near_tau,
            &dataset,
            ErrorModel::FlipNearTau { delta },
            &mut rng,
        );
        let mut random = clean.clone();
        inject(
            &mut random,
            &dataset,
            ErrorModel::FlipRandom { fraction: 0.15 },
            &mut rng,
        );
        auc_near_sum += train_auc(&near_tau, 40 + round);
        auc_random_sum += train_auc(&random, 50 + round);
    }
    let auc_clean = train_auc(&clean, 3);
    let auc_near = auc_near_sum / runs as f64;
    let auc_random = auc_random_sum / runs as f64;

    assert!(auc_clean > 0.9);
    assert!(
        auc_near > auc_clean - 0.12,
        "near-τ errors should be mild: {auc_clean} → {auc_near}"
    );
    assert!(
        auc_random < auc_near + 0.01,
        "random flips ({auc_random}) must hurt at least as much as near-τ flips ({auc_near})"
    );
}

#[test]
fn vivaldi_baseline_learns_but_classification_needs_no_quantities() {
    // Vivaldi predicts quantities from quantities; DMFSGD class mode
    // reaches high AUC from one-bit measurements. Both should work on
    // their own terms.
    let dataset = meridian_like(60, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut viv = Vivaldi::new(60, VivaldiConfig::default(), &mut rng);
    let neighbors = NeighborSets::random(60, 10, &mut rng);
    for _ in 0..60 * 300 {
        let i = rng.gen_range(0..60);
        let j = neighbors.sample_neighbor(i, &mut rng);
        viv.observe(i, j, dataset.values[(i, j)], &mut rng);
    }
    assert!(
        viv.median_relative_error(&dataset) < 0.4,
        "vivaldi should embed the RTT space"
    );

    let classes = dataset.classify(dataset.median());
    let mut provider = ClassLabelProvider::new(classes.clone());
    let mut cfg = DmfsgdConfig::paper_defaults();
    cfg.seed = 12;
    let mut system = SessionBuilder::from_config(cfg)
        .nodes(60)
        .build()
        .expect("valid config");
    system
        .run(60 * 10 * 25, &mut provider)
        .expect("provider covers the session");
    let a = auc(&collect_scores(&classes, &system.predicted_scores()));
    assert!(a > 0.85, "class-based AUC {a}");
}

#[test]
fn hinge_and_logistic_both_work_logistic_not_worse() {
    let dataset = meridian_like(70, 4);
    let classes = dataset.classify(dataset.median());
    let run = |loss: Loss, seed: u64| {
        let mut provider = ClassLabelProvider::new(classes.clone());
        let mut cfg = DmfsgdConfig::paper_defaults();
        cfg.sgd.loss = loss;
        cfg.seed = seed;
        let mut system = SessionBuilder::from_config(cfg)
            .nodes(70)
            .build()
            .expect("valid config");
        system
            .run(70 * 10 * 25, &mut provider)
            .expect("provider covers the session");
        auc(&collect_scores(&classes, &system.predicted_scores()))
    };
    let logistic = run(Loss::Logistic, 1);
    let hinge = run(Loss::Hinge, 1);
    assert!(
        logistic > 0.85 && hinge > 0.8,
        "logistic {logistic}, hinge {hinge}"
    );
    assert!(
        logistic > hinge - 0.03,
        "logistic ({logistic}) should not trail hinge ({hinge}) meaningfully"
    );
}
