//! Pins the `dmfsgd::` facade surface: every re-exported workspace
//! crate must stay reachable through the facade, the root-level
//! session API (`Session`, `SessionBuilder`, `Snapshot`,
//! `DmfsgdError`, `Driver`) must stay exported, and the quick-start
//! training path must keep its accuracy. A rename or dropped
//! re-export in `src/lib.rs` fails here before any downstream user
//! notices.

use dmfsgd::agent::{MeasurementOracle, UdpDriver};
use dmfsgd::baselines::vivaldi::VivaldiConfig;
use dmfsgd::baselines::Vivaldi;
use dmfsgd::core::provider::ClassLabelProvider;
use dmfsgd::core::runner::SimnetDriver;
use dmfsgd::core::session::OracleDriver;
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::datasets::Metric;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::linalg::{Mask, Matrix};
use dmfsgd::proto::{decode, encode, Message};
use dmfsgd::simnet::{EventQueue, NeighborSets};
use dmfsgd::{
    ConfigError, DmfsgdError, Driver, MembershipError, NodeId, Session, SessionBuilder, Snapshot,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The quick-start path from the crate docs, via facade paths only:
/// generate a dataset, build a session, train, evaluate AUC.
#[test]
fn facade_quick_start_trains_above_auc_080() {
    let dataset = meridian_like(60, 7);
    let tau = dataset.median();
    let classes = dataset.classify(tau);

    let mut provider = ClassLabelProvider::new(classes.clone());
    let mut session = Session::builder()
        .nodes(dataset.len())
        .seed(7)
        .tau(tau)
        .build()
        .expect("paper defaults are valid");
    session
        .run(60 * 10 * 25, &mut provider)
        .expect("provider covers the session");

    let a = auc(&collect_scores(&classes, &session.predicted_scores()));
    assert!(a > 0.8, "facade quick-start AUC {a} must exceed 0.8");
}

/// The root-level session surface: builder, typed errors, membership,
/// snapshots, queries and the `Driver` trait, all via facade paths.
#[test]
fn session_surface_is_pinned_at_the_facade_root() {
    // Builder + typed ConfigError.
    let err: ConfigError = SessionBuilder::new().nodes(3).k(10).build().unwrap_err();
    assert!(matches!(err, ConfigError::TooFewNodes { n: 3, k: 10 }));
    let mut session = Session::builder()
        .nodes(24)
        .rank(8)
        .eta(0.1)
        .lambda(0.1)
        .k(6)
        .seed(1)
        .build()
        .expect("valid");

    // Membership + typed MembershipError wrapped in DmfsgdError.
    let departed: NodeId = 5;
    session.leave(departed).expect("first leave");
    let err: DmfsgdError = session.leave(departed).unwrap_err();
    assert!(matches!(
        err,
        DmfsgdError::Membership(MembershipError::Departed { id: 5 })
    ));
    let rejoined = session.join().expect("rejoin");
    assert_eq!(rejoined, departed);

    // Incremental queries.
    let score = session.raw_score(0, 1).expect("alive pair");
    assert_eq!(
        session.predict_class(0, 1).expect("alive pair"),
        if score >= 0.0 { 1.0 } else { -1.0 }
    );
    assert_eq!(session.rank_neighbors(0, 4).expect("alive").len(), 4);

    // Snapshot round trip through JSON.
    let snapshot: Snapshot = session.snapshot();
    let restored =
        Session::restore(&Snapshot::from_json(&snapshot.to_json()).expect("parse")).expect("valid");
    assert_eq!(restored.predicted_scores(), session.predicted_scores());

    // The Driver trait unifies the three front-ends; drive via the
    // oracle one through a `dyn` reference to pin object safety.
    let d = meridian_like(24, 1);
    let mut driver =
        OracleDriver::new(ClassLabelProvider::new(d.classify(d.median())), 240).expect("ticks");
    let dyn_driver: &mut dyn Driver = &mut driver;
    let applied = session.drive(dyn_driver, 2).expect("drive");
    assert!(applied > 0);
}

/// Touches one load-bearing item in each re-exported crate so the
/// whole facade is compile-time pinned.
#[test]
fn every_reexported_crate_is_reachable() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    // linalg
    let m = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
    assert_eq!(m.rows(), 4);
    let mask = Mask::full_off_diagonal(4);
    assert_eq!(mask.count_known(), 12);

    // datasets
    let dataset = meridian_like(16, 3);
    assert_eq!(dataset.metric, Metric::Rtt);
    assert!(dataset.median() > 0.0);

    // simnet
    let neighbors = NeighborSets::random(16, 4, &mut rng);
    assert_eq!(neighbors.neighbors(0).len(), 4);
    let mut queue: EventQueue<u32> = EventQueue::new();
    queue.schedule_at(1.0, 42);
    assert_eq!(queue.pop(), Some((1.0, 42)));

    // core: the session front-ends stay nameable.
    let session = Session::builder()
        .nodes(16)
        .k(4)
        .tau(dataset.median())
        .build()
        .expect("valid");
    assert_eq!(session.config().rank, 10);
    let _simnet_front_end: SimnetDriver = SimnetDriver::new(
        &session,
        dataset.clone(),
        dmfsgd::simnet::NetConfig::default(),
    )
    .expect("valid driver");
    let _udp_front_end: UdpDriver = UdpDriver::new(
        &session,
        dataset.clone(),
        dmfsgd::agent::ClusterConfig::default(),
    )
    .expect("valid driver");

    // eval
    let classes = dataset.classify(dataset.median());
    let scores = collect_scores(&classes, &Matrix::zeros(16, 16));
    assert!(!scores.is_empty());

    // proto
    let wire = encode(&Message::RttProbe { nonce: 99 });
    assert_eq!(decode(&wire), Ok(Message::RttProbe { nonce: 99 }));

    // baselines
    let vivaldi = Vivaldi::new(16, VivaldiConfig::default(), &mut rng);
    assert_eq!(vivaldi.len(), 16);

    // agent
    let tau = dataset.median();
    let oracle = MeasurementOracle::new(dataset, tau, 5);
    let label = oracle.measure_class(0, 1).expect("off-diagonal measurable");
    assert!(label == 1.0 || label == -1.0);

    // service
    let partition = dmfsgd::service::Partition::new(16, 4).expect("valid partition");
    assert_eq!(partition.owner(0), 0);
    let svc =
        dmfsgd::service::PredictionService::build(*session.config(), 16, 4).expect("valid service");
    svc.update_rtt(0, 1, 1.0).expect("routed update");
    assert!(svc.predict(0, 1).expect("served prediction").is_finite());
}
