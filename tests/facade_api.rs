//! Pins the `dmfsgd::` facade surface: every re-exported workspace
//! crate must stay reachable through the facade, and the quick-start
//! training path must keep its accuracy. A rename or dropped
//! re-export in `src/lib.rs` fails here before any downstream user
//! notices.

use dmfsgd::agent::MeasurementOracle;
use dmfsgd::baselines::vivaldi::VivaldiConfig;
use dmfsgd::baselines::Vivaldi;
use dmfsgd::core::provider::ClassLabelProvider;
use dmfsgd::core::{DmfsgdConfig, DmfsgdSystem};
use dmfsgd::datasets::rtt::meridian_like;
use dmfsgd::datasets::Metric;
use dmfsgd::eval::{collect_scores, roc::auc};
use dmfsgd::linalg::{Mask, Matrix};
use dmfsgd::proto::{decode, encode, Message};
use dmfsgd::simnet::{EventQueue, NeighborSets};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The quick-start path from the crate docs, via facade paths only:
/// generate a dataset, train with paper defaults, evaluate AUC.
#[test]
fn facade_quick_start_trains_above_auc_080() {
    let dataset = meridian_like(60, 7);
    let tau = dataset.median();
    let classes = dataset.classify(tau);

    let mut provider = ClassLabelProvider::new(classes.clone());
    let mut system = DmfsgdSystem::new(dataset.len(), DmfsgdConfig::paper_defaults());
    system.run(60 * 10 * 25, &mut provider);

    let a = auc(&collect_scores(&classes, &system.predicted_scores()));
    assert!(a > 0.8, "facade quick-start AUC {a} must exceed 0.8");
}

/// Touches one load-bearing item in each re-exported crate so the
/// whole facade is compile-time pinned.
#[test]
fn every_reexported_crate_is_reachable() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    // linalg
    let m = Matrix::from_fn(4, 4, |i, j| (i + j) as f64);
    assert_eq!(m.rows(), 4);
    let mask = Mask::full_off_diagonal(4);
    assert_eq!(mask.count_known(), 12);

    // datasets
    let dataset = meridian_like(16, 3);
    assert_eq!(dataset.metric, Metric::Rtt);
    assert!(dataset.median() > 0.0);

    // simnet
    let neighbors = NeighborSets::random(16, 4, &mut rng);
    assert_eq!(neighbors.neighbors(0).len(), 4);
    let mut queue: EventQueue<u32> = EventQueue::new();
    queue.schedule_at(1.0, 42);
    assert_eq!(queue.pop(), Some((1.0, 42)));

    // core
    let config = DmfsgdConfig::paper_defaults();
    assert_eq!(config.rank, 10);

    // eval
    let classes = dataset.classify(dataset.median());
    let scores = collect_scores(&classes, &Matrix::zeros(16, 16));
    assert!(!scores.is_empty());

    // proto
    let wire = encode(&Message::RttProbe { nonce: 99 });
    assert_eq!(decode(&wire), Ok(Message::RttProbe { nonce: 99 }));

    // baselines
    let vivaldi = Vivaldi::new(16, VivaldiConfig::default(), &mut rng);
    assert_eq!(vivaldi.len(), 16);

    // agent
    let tau = dataset.median();
    let oracle = MeasurementOracle::new(dataset, tau, 5);
    let label = oracle.measure_class(0, 1).expect("off-diagonal measurable");
    assert!(label == 1.0 || label == -1.0);
}
