//! Keeps `docs/operations.md` and the code honest about each other:
//! every metric name the registries export must be documented in the
//! runbook, and every metric name the runbook mentions must exist in
//! a registry. Either drift direction is a test failure, so the
//! operator-facing reference can be trusted without reading source.

use dmfsgd::agent::{FLEET_GAUGE_NAMES, STAT_METRICS};
use dmfsgd::service::ServiceMetrics;
use std::collections::BTreeSet;

/// The metric-name namespace the runbook documents. Crate paths like
/// `dmf_agent::Fleet` never match (they contain `::`), and the `dmf-`
/// crate names don't carry these prefixes.
const PREFIXES: [&str; 3] = ["dmf_service_", "dmf_agent_", "dmf_fleet_"];

fn is_metric_name(token: &str) -> bool {
    PREFIXES
        .iter()
        .any(|p| token.len() > p.len() && token.starts_with(p))
        && token
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

/// Inline-code spans of the runbook, with fenced blocks stripped
/// first (the format examples repeat table entries; only the tables
/// and prose are authoritative).
fn documented_names(doc: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut in_fence = false;
    for line in doc.lines() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        for (idx, span) in line.split('`').enumerate() {
            // Odd split indices sit between backticks: `span`.
            if idx % 2 == 1 && is_metric_name(span) {
                names.insert(span.to_string());
            }
        }
    }
    names
}

/// Every metric name the live registries can export.
fn exported_names() -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for sample in ServiceMetrics::new(2).snapshot().metrics {
        names.insert(sample.name);
    }
    for metric in &STAT_METRICS {
        names.insert(metric.name.to_string());
    }
    for name in FLEET_GAUGE_NAMES {
        names.insert(name.to_string());
    }
    names
}

fn runbook() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/docs/operations.md");
    std::fs::read_to_string(path).expect("docs/operations.md exists")
}

#[test]
fn every_exported_metric_is_documented_in_the_runbook() {
    let documented = documented_names(&runbook());
    let missing: Vec<_> = exported_names()
        .into_iter()
        .filter(|n| !documented.contains(n))
        .collect();
    assert!(
        missing.is_empty(),
        "metrics exported but absent from docs/operations.md: {missing:?}"
    );
}

#[test]
fn every_documented_metric_exists_in_a_registry() {
    let exported = exported_names();
    let phantom: Vec<_> = documented_names(&runbook())
        .into_iter()
        .filter(|n| !exported.contains(n))
        .collect();
    assert!(
        phantom.is_empty(),
        "docs/operations.md documents metrics no registry exports: {phantom:?}"
    );
}

#[test]
fn the_runbook_documents_the_whole_namespace_non_trivially() {
    let documented = documented_names(&runbook());
    for prefix in PREFIXES {
        assert!(
            documented.iter().any(|n| n.starts_with(prefix)),
            "runbook lost its {prefix}* section"
        );
    }
    // 10 service + 12 agent + 6 fleet names today; only grows.
    assert!(documented.len() >= 28, "got {}", documented.len());
}
