//! # dmfsgd — Decentralized Prediction of End-to-End Network Performance Classes
//!
//! A from-scratch Rust reproduction of Liao, Du, Geurts & Leduc,
//! *"Decentralized Prediction of End-to-End Network Performance
//! Classes"* (ACM CoNEXT 2011): the **DMFSGD** algorithms — matrix
//! completion of binary ("good"/"bad") pairwise performance classes by
//! fully decentralized stochastic gradient descent — together with the
//! datasets, simulator, evaluation criteria, baselines and a real UDP
//! deployment.
//!
//! This facade crate re-exports the public API of every workspace
//! member. Start with [`core`] (the algorithms), [`datasets`] (the
//! calibrated synthetic Harvard/Meridian/HP-S3 equivalents) and
//! [`eval`] (ROC/AUC, peer selection).
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`linalg`] | `dmf-linalg` | matrices, masks, SVD/QR, statistics |
//! | [`datasets`] | `dmf-datasets` | calibrated synthetic datasets and loaders |
//! | [`simnet`] | `dmf-simnet` | discrete-event network, probers, label errors |
//! | [`core`] | `dmf-core` | the DMFSGD algorithms and drivers |
//! | [`eval`] | `dmf-eval` | ROC/AUC, PR, confusion, convergence, peer selection |
//! | [`proto`] | `dmf-proto` | binary wire protocol |
//! | [`baselines`] | `dmf-baselines` | Vivaldi, centralized MF, oracle selection |
//! | [`ops`] | `dmf-ops` | metrics registry, exporters, health policy, live quality |
//! | [`service`] | `dmf-service` | sharded, pipelined prediction service |
//! | [`agent`] | `dmf-agent` | real UDP deployment and long-running [`agent::Fleet`] |
//!
//! A narrative walk-through (experiment end-to-end, choosing the
//! `r`/`η`/`λ`/`k`/`τ` knobs, churn and snapshot/restore, reading the
//! outputs) lives in `docs/guide.md`; the paper-artifact-to-binary map
//! is in the repository `README.md`.
//!
//! ## Quick start
//!
//! The primary entry point is the [`Session`] API: a long-lived,
//! panic-free service population built with [`SessionBuilder`],
//! advanced by a [`Driver`] front-end, queried incrementally, and
//! persisted with [`Snapshot`]s. Every failure a caller can cause is
//! a typed [`DmfsgdError`].
//!
//! ```
//! use dmfsgd::core::provider::ClassLabelProvider;
//! use dmfsgd::datasets::rtt::meridian_like;
//! use dmfsgd::eval::{collect_scores, roc::auc};
//! use dmfsgd::{DmfsgdError, Session, Snapshot};
//!
//! // A 60-node RTT dataset calibrated to the Meridian median (56.4 ms).
//! let dataset = meridian_like(60, 7);
//! let tau = dataset.median();            // paper default threshold
//! let classes = dataset.classify(tau);   // ±1 class matrix
//!
//! // Build a session with the paper defaults (r=10, η=λ=0.1,
//! // logistic loss) — every knob validated, no panics.
//! let mut session = Session::builder()
//!     .nodes(dataset.len())
//!     .rank(10)
//!     .eta(0.1)
//!     .lambda(0.1)
//!     .k(10)
//!     .seed(7)
//!     .tau(tau)
//!     .build()?;
//!
//! // Train on ≈ 25×k measurements per node (matrix replay).
//! let mut provider = ClassLabelProvider::new(classes.clone());
//! session.run(60 * 10 * 25, &mut provider)?;
//!
//! // Incremental queries — no n² matrix materialized.
//! let class = session.predict_class(0, 1)?;
//! assert!(class == 1.0 || class == -1.0);
//! let best_peers = session.rank_neighbors(0, 3)?;
//! assert_eq!(best_peers.len(), 3);
//!
//! // Snapshot → restore round trips are bit-exact.
//! let snapshot = session.snapshot();
//! let restored = Session::restore(&Snapshot::from_json(&snapshot.to_json())?)?;
//! assert_eq!(restored.predicted_scores(), session.predicted_scores());
//!
//! // Offline evaluation over the full matrix.
//! let auc = auc(&collect_scores(&classes, &session.predicted_scores()));
//! assert!(auc > 0.85);
//! # Ok::<(), DmfsgdError>(())
//! ```
//!
//! Nodes can [`join`](Session::join) and [`leave`](Session::leave) a
//! running session (neighbor sets repair themselves), and the same
//! session can be advanced by matrix replay
//! ([`core::session::OracleDriver`]), the discrete-event simulator
//! ([`core::runner::SimnetDriver`]) or real UDP sockets
//! ([`agent::UdpDriver`]) — all through the one [`Driver`] trait.
//! To put a trained population behind a query surface, [`service`]
//! shards it behind a framed, pipelined wire protocol whose answers
//! are bit-identical to a single session's
//! (`examples/prediction_service.rs` is the end-to-end tour).
//!
//! Both serving layers are observable through [`ops`]: live metrics
//! (text/JSON exposition with a pinned schema), a rolling-AUC quality
//! gauge, and typed health verdicts — served in-band by the service
//! protocol and by [`agent::Fleet`], the long-running UDP deployment
//! with join/leave and live checkpointing (`examples/fleet_ops.rs`;
//! `docs/operations.md` is the operator runbook).

pub use dmf_agent as agent;
pub use dmf_baselines as baselines;
pub use dmf_core as core;
pub use dmf_datasets as datasets;
pub use dmf_eval as eval;
pub use dmf_linalg as linalg;
pub use dmf_ops as ops;
pub use dmf_proto as proto;
pub use dmf_service as service;
pub use dmf_simnet as simnet;

pub use dmf_core::{
    ConfigError, DmfsgdError, Driver, MembershipError, NodeId, Session, SessionBuilder, Snapshot,
    SnapshotError,
};
