//! # dmfsgd — Decentralized Prediction of End-to-End Network Performance Classes
//!
//! A from-scratch Rust reproduction of Liao, Du, Geurts & Leduc,
//! *"Decentralized Prediction of End-to-End Network Performance
//! Classes"* (ACM CoNEXT 2011): the **DMFSGD** algorithms — matrix
//! completion of binary ("good"/"bad") pairwise performance classes by
//! fully decentralized stochastic gradient descent — together with the
//! datasets, simulator, evaluation criteria, baselines and a real UDP
//! deployment.
//!
//! This facade crate re-exports the public API of every workspace
//! member. Start with [`core`] (the algorithms), [`datasets`] (the
//! calibrated synthetic Harvard/Meridian/HP-S3 equivalents) and
//! [`eval`] (ROC/AUC, peer selection).
//!
//! ## Crate map
//!
//! | Re-export | Crate | Role |
//! |---|---|---|
//! | [`linalg`] | `dmf-linalg` | matrices, masks, SVD/QR, statistics |
//! | [`datasets`] | `dmf-datasets` | calibrated synthetic datasets and loaders |
//! | [`simnet`] | `dmf-simnet` | discrete-event network, probers, label errors |
//! | [`core`] | `dmf-core` | the DMFSGD algorithms and drivers |
//! | [`eval`] | `dmf-eval` | ROC/AUC, PR, confusion, convergence, peer selection |
//! | [`proto`] | `dmf-proto` | binary wire protocol |
//! | [`baselines`] | `dmf-baselines` | Vivaldi, centralized MF, oracle selection |
//! | [`agent`] | `dmf-agent` | real UDP deployment |
//!
//! A narrative walk-through (experiment end-to-end, choosing the
//! `r`/`η`/`λ`/`k`/`τ` knobs, reading the outputs) lives in
//! `docs/guide.md`; the paper-artifact-to-binary map is in the
//! repository `README.md`.
//!
//! ## Quick start
//!
//! ```
//! use dmfsgd::core::{provider::ClassLabelProvider, DmfsgdConfig, DmfsgdSystem};
//! use dmfsgd::datasets::rtt::meridian_like;
//! use dmfsgd::eval::{collect_scores, roc::auc};
//!
//! // A 60-node RTT dataset calibrated to the Meridian median (56.4 ms).
//! let dataset = meridian_like(60, 7);
//! let tau = dataset.median();            // paper default threshold
//! let classes = dataset.classify(tau);   // ±1 class matrix
//!
//! // Train with the paper defaults (r=10, η=λ=0.1, logistic loss).
//! let mut provider = ClassLabelProvider::new(classes.clone());
//! let mut system = DmfsgdSystem::new(dataset.len(), DmfsgdConfig::paper_defaults());
//! system.run(60 * 10 * 25, &mut provider); // ≈ 25×k measurements per node
//!
//! let auc = auc(&collect_scores(&classes, &system.predicted_scores()));
//! assert!(auc > 0.85);
//! ```

pub use dmf_agent as agent;
pub use dmf_baselines as baselines;
pub use dmf_core as core;
pub use dmf_datasets as datasets;
pub use dmf_eval as eval;
pub use dmf_linalg as linalg;
pub use dmf_proto as proto;
pub use dmf_simnet as simnet;
